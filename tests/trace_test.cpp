// Flight-recorder coverage: ring-buffer overflow semantics (newest kept,
// exact drop counter), deterministic event capture across serial and
// parallel matrix sweeps, invariant monitors firing on an injected
// double-finalize and staying silent across the honest matrix, and the
// Chrome-trace JSON emitter producing loadable output.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/matrix.hpp"
#include "harness/monitor.hpp"
#include "harness/scenario.hpp"
#include "harness/trace.hpp"

namespace ratcon::harness {
namespace {

TraceEvent make_event(std::uint64_t seq, NodeId node = 0,
                      TraceKind kind = TraceKind::kRoundEnter) {
  TraceEvent ev{};
  ev.seq = seq;
  ev.node = node;
  ev.kind = kind;
  ev.round = seq;
  return ev;
}

// -- TraceRing ---------------------------------------------------------------

TEST(TraceRingTest, KeepsNewestOnOverflowWithExactDropCount) {
  TraceRing ring;
  ring.reset(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first iteration yields exactly the newest four events.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).seq, 6u + i);
  }
}

TEST(TraceRingTest, NoDropsBelowCapacity) {
  TraceRing ring;
  ring.reset(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.at(0).seq, 0u);
  EXPECT_EQ(ring.at(4).seq, 4u);
}

// -- TraceSink ---------------------------------------------------------------

TEST(TraceSinkTest, LevelZeroRecordsNothingAndAllocatesNoRings) {
  TraceSink& sink = TraceSink::Get();
  sink.Reset(/*level=*/0, /*nodes=*/4);
  trace_state(TraceKind::kFinalize, 0, 1, 1, 1, 0xAB, 3);
  EXPECT_EQ(sink.nodes(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
  sink.Reset(0, 0);
}

TEST(TraceSinkTest, LevelGatesKindsAndMergesInSeqOrder) {
  TraceSink& sink = TraceSink::Get();
  sink.Reset(/*level=*/1, /*nodes=*/2);
  trace_state(TraceKind::kRoundEnter, 1, 5, 1);
  trace_wire(TraceKind::kSend, 0, 1, 5, 1, 0, 0x1234);  // level 2 — gated off
  trace_state(TraceKind::kFinalize, 0, 5, 1, 1, 0xAB, 3);
  EXPECT_EQ(sink.recorded(), 2u);
  const auto merged = sink.merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].kind, TraceKind::kRoundEnter);
  EXPECT_EQ(merged[1].kind, TraceKind::kFinalize);
  EXPECT_LT(merged[0].seq, merged[1].seq);
  sink.Reset(0, 0);
}

TEST(TraceSinkTest, SimulationOverflowDropsAreExact) {
  ScenarioSpec spec;
  spec.committee.n = 4;
  spec.seed = 3;
  spec.budget.target_blocks = 2;
  spec.workload.txs = 4;
  spec.trace_level = 3;
  spec.trace_capacity = 16;  // tiny rings: overflow guaranteed
  Simulation sim(spec);
  const RunReport report = sim.run_to_completion();
  EXPECT_GT(report.trace.recorded, 0u);
  EXPECT_GT(report.trace.dropped, 0u);
  const TraceSink& sink = TraceSink::Get();
  std::uint64_t retained = 0;
  for (NodeId id = 0; id < sink.nodes(); ++id) {
    EXPECT_LE(sink.ring(id).size(), 16u);
    retained += sink.ring(id).size();
  }
  EXPECT_EQ(report.trace.dropped, report.trace.recorded - retained);
}

// -- Monitors ----------------------------------------------------------------

TEST(MonitorTest, InjectedDoubleFinalizeIsCaughtWithFullLineage) {
  ScenarioSpec spec;
  spec.committee.n = 4;
  spec.seed = 7;
  spec.budget.target_blocks = 2;
  spec.workload.txs = 4;
  spec.trace_level = 3;
  Simulation sim(spec);
  const RunReport clean = sim.run_to_completion();
  ASSERT_TRUE(clean.safe());
  ASSERT_FALSE(sim.monitors().violated());
  ASSERT_EQ(clean.trace.violations, 0u);

  // Find a genuinely recorded finalize, then inject a conflicting one at
  // the same height with a different value from another replica — the
  // seeded equivalent of an agreement break.
  const std::vector<TraceEvent> events = TraceSink::Get().merged();
  const TraceEvent* fin = nullptr;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceKind::kFinalize) {
      fin = &ev;
      break;
    }
  }
  ASSERT_NE(fin, nullptr) << "no finalize recorded at level 3";
  const NodeId other = (fin->node + 1) % spec.committee.n;
  trace_state(TraceKind::kFinalize, other, fin->round, fin->proto, fin->a,
              fin->b ^ 0xDEADBEEFull, fin->aux);

  EXPECT_TRUE(sim.monitors().violated());
  ASSERT_TRUE(sim.forensics().has_value());
  const ForensicsBundle& bundle = *sim.forensics();
  EXPECT_NE(bundle.reason.find("conflicting-finalize"), std::string::npos)
      << bundle.reason;

  // The bundle's text names both conflicting finalize events (their seqs)
  // and lists the messages that led to each on its replica.
  EXPECT_NE(bundle.text.find("conflicting finalize"), std::string::npos);
  const std::string prior_seq = "seq " + std::to_string(fin->seq);
  EXPECT_NE(bundle.text.find(prior_seq), std::string::npos)
      << "bundle does not name the first finalize:\n"
      << bundle.text;
  EXPECT_NE(bundle.text.find("messages leading to finalize"),
            std::string::npos);
  // Level 3 recorded real wire traffic before the first finalize, so its
  // lineage section must not be empty.
  const auto lead_at = bundle.text.find("messages leading to finalize on n" +
                                        std::to_string(fin->node));
  ASSERT_NE(lead_at, std::string::npos) << bundle.text;
  const auto next_lead = bundle.text.find("messages leading", lead_at + 1);
  const std::string lead_section = bundle.text.substr(
      lead_at,
      next_lead == std::string::npos ? std::string::npos : next_lead - lead_at);
  EXPECT_EQ(lead_section.find("(none recorded"), std::string::npos)
      << lead_section;

  // The same slice ships as a Chrome-tracing document.
  EXPECT_FALSE(bundle.chrome_json.empty());
  EXPECT_EQ(bundle.chrome_json.front(), '{');
  EXPECT_NE(bundle.chrome_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(bundle.chrome_json.find("\"finalize\""), std::string::npos);
}

TEST(MonitorTest, QuorumThresholdMonitorFlagsUndersizedCertificate) {
  TraceSink& sink = TraceSink::Get();
  sink.Reset(/*level=*/1, /*nodes=*/4);
  MonitorSet monitors;
  monitors.install_standard(/*quorum_threshold=*/3);
  sink.set_observer(&monitors);
  trace_state(TraceKind::kFinalize, 0, 1, 1, /*a=*/1, /*b=*/0xAA, /*aux=*/3);
  trace_state(TraceKind::kFinalize, 1, 1, 1, /*a=*/1, /*b=*/0xAA, /*aux=*/-1);
  EXPECT_FALSE(monitors.violated());  // 3 >= τ; -1 is delegated (exempt)
  trace_state(TraceKind::kFinalize, 2, 2, 1, /*a=*/2, /*b=*/0xBB, /*aux=*/2);
  EXPECT_TRUE(monitors.violated());
  sink.set_observer(nullptr);
  sink.Reset(0, 0);
}

TEST(MonitorTest, LockMonotonicityFlagsSameHeightBackwardsJumpOnly) {
  TraceSink& sink = TraceSink::Get();
  sink.Reset(/*level=*/1, /*nodes=*/2);
  MonitorSet monitors;
  monitors.install_standard(2);
  sink.set_observer(&monitors);
  // Forward re-lock at the same height, then a different height at a
  // lower round (legal chained progress): both fine.
  trace_state(TraceKind::kLockAcquire, 0, 5, 1, /*a=*/3);
  trace_state(TraceKind::kLockAcquire, 0, 6, 1, /*a=*/3);
  trace_state(TraceKind::kLockAcquire, 0, 4, 1, /*a=*/4);
  EXPECT_FALSE(monitors.violated());
  // Release clears the held lock; re-acquiring lower is then fine.
  trace_state(TraceKind::kLockRelease, 0, 4, 1, /*a=*/4);
  trace_state(TraceKind::kLockAcquire, 0, 2, 1, /*a=*/4);
  EXPECT_FALSE(monitors.violated());
  // Same height, older round, no release: the real violation.
  trace_state(TraceKind::kLockAcquire, 0, 1, 1, /*a=*/4);
  EXPECT_TRUE(monitors.violated());
  sink.set_observer(nullptr);
  sink.Reset(0, 0);
}

// -- Determinism across sweep modes -----------------------------------------

TEST(TraceMatrixTest, SerialAndParallelSweepsRecordIdenticalCounts) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff, Protocol::kRaftLite,
                    Protocol::kQuorum};
  spec.committee_sizes = {4};
  spec.seeds = {1, 2};
  spec.target_blocks = 2;
  spec.workload_txs = 6;
  spec.trace_level = 2;

  spec.workers = 1;
  const MatrixReport serial = run_matrix(spec);
  spec.workers = 4;
  const MatrixReport parallel = run_matrix(spec);

  ASSERT_EQ(serial.cell_count(), parallel.cell_count());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const CellResult& s = serial.cells[i];
    const CellResult& p = parallel.cells[i];
    EXPECT_GT(s.trace.recorded, 0u) << s.label();
    EXPECT_EQ(s.trace.recorded, p.trace.recorded) << s.label();
    EXPECT_EQ(s.trace.dropped, p.trace.dropped) << s.label();
    // The monitors stay silent across the whole deterministic matrix.
    EXPECT_EQ(s.trace.violations, 0u) << s.label();
    EXPECT_EQ(p.trace.violations, 0u) << p.label();
  }
  EXPECT_TRUE(serial.all_safe());
  const TraceStats total = serial.aggregate_trace();
  EXPECT_EQ(total.recorded, parallel.aggregate_trace().recorded);
  EXPECT_EQ(total.level, 2);
}

// -- Renderers ---------------------------------------------------------------

TEST(TraceRenderTest, ChromeTraceJoinsSendRecvWithFlowArrows) {
  TraceEvent send = make_event(1, 0, TraceKind::kSend);
  send.peer = 1;
  send.corr = 0xC0FFEE;
  send.proto = 1;
  TraceEvent recv = make_event(2, 1, TraceKind::kRecv);
  recv.peer = 0;
  recv.corr = 0xC0FFEE;
  recv.proto = 1;
  recv.at = 10;
  const std::string json = chrome_trace_json({send, recv}, 2);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Braces balance (no JSON parser in-tree; this catches truncation).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceRenderTest, TextFormatNamesWireAndStateEvents) {
  TraceEvent fin = make_event(3, 2, TraceKind::kFinalize);
  fin.a = 7;
  fin.b = 0xAB;
  fin.aux = 3;
  TraceEvent send = make_event(4, 0, TraceKind::kSend);
  send.peer = 2;
  send.corr = 0x1234;
  const std::string text = format_trace_text({fin, send});
  EXPECT_NE(text.find("finalize"), std::string::npos);
  EXPECT_NE(text.find("h=7"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("corr="), std::string::npos);
}

}  // namespace
}  // namespace ratcon::harness
