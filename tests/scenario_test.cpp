// Unit/integration tests for the unified Scenario/Simulation API: builder
// defaults, protocol-registry dispatch for all four protocols, fault-plan
// scheduling, and the guarantee that adversary behaviours inject
// *identically* through ScenarioSpec::adversary as through a hand-rolled
// node factory (the old PrftCluster path).

#include <gtest/gtest.h>

#include <memory>

#include "adversary/behaviors.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"

namespace ratcon::harness {
namespace {

TEST(ScenarioSpecDefaults, MatchDocumentedValues) {
  const ScenarioSpec spec;
  EXPECT_EQ(spec.protocol, Protocol::kPrft);
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.committee.n, 7u);
  EXPECT_FALSE(spec.committee.t0.has_value());
  EXPECT_EQ(spec.committee.collateral, 100);
  EXPECT_EQ(spec.net.kind, NetKind::kSynchronous);
  EXPECT_EQ(spec.net.delta, msec(10));
  EXPECT_TRUE(spec.faults.empty());
  EXPECT_TRUE(spec.adversary.empty());
  EXPECT_EQ(spec.workload.txs, 0u);
  EXPECT_EQ(spec.budget.target_blocks, 5u);
  EXPECT_EQ(spec.label(), "prft/n=7/synchronous/seed=1");
}

TEST(ScenarioSpecDefaults, SimulationResolvesRegistryDefaults) {
  // t0 and base_timeout are resolved per protocol at assembly time.
  Simulation prft(ScenarioSpec{});
  EXPECT_EQ(prft.config().n, 7u);
  EXPECT_EQ(prft.config().t0, consensus::prft_t0(7));
  EXPECT_EQ(prft.config().base_timeout, 8 * msec(10));
  EXPECT_EQ(prft.deposits().collateral(), 100);
  EXPECT_EQ(prft.size(), 7u);

  ScenarioSpec quorum;
  quorum.protocol = Protocol::kQuorum;
  Simulation qsim(quorum);
  EXPECT_EQ(qsim.config().t0, consensus::bft_t0(7));

  ScenarioSpec raft;
  raft.protocol = Protocol::kRaftLite;
  Simulation rsim(raft);
  EXPECT_EQ(rsim.config().t0, 0u);

  // Explicit overrides win over registry defaults.
  ScenarioSpec custom;
  custom.committee.t0 = 3;
  custom.committee.base_timeout = msec(55);
  Simulation csim(custom);
  EXPECT_EQ(csim.config().t0, 3u);
  EXPECT_EQ(csim.config().base_timeout, msec(55));
}

TEST(ScenarioBuilder, FluentSettersCompose) {
  ScenarioSpec spec;
  spec.with_protocol(Protocol::kHotStuff)
      .with_n(16)
      .with_seed(9)
      .with_net(NetworkSpec::partial_synchrony(msec(300), msec(5), 0.7))
      .with_target_blocks(2)
      .with_workload(8);
  EXPECT_EQ(spec.protocol, Protocol::kHotStuff);
  EXPECT_EQ(spec.committee.n, 16u);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.net.kind, NetKind::kPartialSynchrony);
  EXPECT_EQ(spec.net.gst, msec(300));
  EXPECT_EQ(spec.net.delta, msec(5));
  EXPECT_EQ(spec.budget.target_blocks, 2u);
  EXPECT_EQ(spec.workload.txs, 8u);
  EXPECT_EQ(spec.label(), "hotstuff/n=16/partial-synchrony/seed=9");
}

class RegistryDispatch : public ::testing::TestWithParam<Protocol> {};

// Every protocol in the registry deploys through the same ScenarioSpec and
// satisfies the shared safety predicate + synchronous liveness.
TEST_P(RegistryDispatch, DeploysRunsAndReports) {
  ScenarioSpec spec;
  spec.protocol = GetParam();
  spec.committee.n = 7;
  spec.seed = 5;
  spec.budget.target_blocks = 2;
  spec.workload.txs = 8;
  Simulation sim(spec);
  const RunReport report = sim.run_to_completion();

  EXPECT_EQ(report.protocol, GetParam());
  EXPECT_EQ(report.n, 7u);
  EXPECT_TRUE(report.safe()) << report.label();
  EXPECT_GE(report.min_height, 2u) << report.label();
  EXPECT_GT(report.messages, 0u);
  EXPECT_GT(report.bytes, 0u);
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_NE(report.finalized_at, kSimTimeNever);
  EXPECT_LE(report.finalized_at, report.sim_time);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RegistryDispatch,
                         ::testing::Values(Protocol::kPrft,
                                           Protocol::kHotStuff,
                                           Protocol::kRaftLite,
                                           Protocol::kQuorum),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ProtocolRegistry, TraitsMatchEnumNames) {
  for (Protocol p : {Protocol::kPrft, Protocol::kHotStuff,
                     Protocol::kRaftLite, Protocol::kQuorum}) {
    EXPECT_STREQ(protocol_traits(p).name, to_string(p));
  }
  EXPECT_THROW(static_cast<void>(protocol_traits(static_cast<Protocol>(250))),
               std::out_of_range);
}

// The critical injection guarantee: a rational-strategy behaviour plugged
// in through AdversaryPlan::behaviors produces the *identical* deployment
// as a hand-rolled node factory (the old PrftCluster::node_factory path) —
// byte-identical traffic, same outcome classification.
TEST(AdversaryInjection, BehaviorsMatchNodeFactoryExactly) {
  constexpr std::uint32_t kN = 9;
  constexpr std::uint64_t kSeed = 77;

  auto base_spec = [] {
    ScenarioSpec spec;
    spec.committee.n = kN;
    spec.seed = kSeed;
    spec.budget.target_blocks = 3;
    spec.workload.txs = 10;
    return spec;
  };

  // Path A: the declarative behaviours map.
  ScenarioSpec via_behaviors = base_spec();
  for (NodeId id = 0; id < 4; ++id) {
    via_behaviors.adversary.behaviors[id] =
        std::make_shared<adversary::AbstainBehavior>();
  }

  // Path B: a full node factory, as adversarial experiments write them.
  ScenarioSpec via_factory = base_spec();
  via_factory.adversary.node_factory =
      [](NodeId id, const NodeEnv& env) -> std::unique_ptr<consensus::IReplica> {
    if (id < 4) {
      return make_prft_replica(
          id, env, std::make_shared<adversary::AbstainBehavior>());
    }
    return nullptr;  // registry default (honest pRFT)
  };

  Simulation a(via_behaviors);
  Simulation b(via_factory);
  a.start();
  b.start();
  a.run_until(sec(60));
  b.run_until(sec(60));

  // Theorem 1's stall, reached identically through both entry points.
  EXPECT_EQ(a.classify(0), game::SystemState::kNoProgress);
  EXPECT_EQ(b.classify(0), game::SystemState::kNoProgress);
  EXPECT_EQ(a.net().stats().total().count, b.net().stats().total().count);
  EXPECT_EQ(a.net().stats().total().bytes, b.net().stats().total().bytes);
  EXPECT_EQ(a.max_height(), b.max_height());
  EXPECT_EQ(a.honest_chains().size(), b.honest_chains().size());
}

TEST(AdversaryInjection, BehaviorsDriveEveryRegisteredProtocol) {
  // The strategy hooks are protocol-agnostic (consensus::Behavior): an
  // abstaining player is non-honest and silent under every baseline, and
  // with one abstainer within the design bound the rest stay safe + live.
  for (Protocol proto : {Protocol::kHotStuff, Protocol::kQuorum,
                         Protocol::kRaftLite, Protocol::kPrft}) {
    ScenarioSpec spec;
    spec.protocol = proto;
    spec.committee.n = 8;
    spec.seed = 77;
    spec.budget.target_blocks = 2;
    spec.workload.txs = 4;
    spec.adversary.behaviors[2] =
        std::make_shared<adversary::AbstainBehavior>();
    Simulation sim(spec);
    const RunReport report = sim.run_to_completion();
    EXPECT_FALSE(sim.replica(2).is_honest()) << to_string(proto);
    EXPECT_TRUE(report.safe()) << to_string(proto);
    EXPECT_GE(report.live_min_height, 2u) << to_string(proto);
    // The abstainer sent nothing but catch-up traffic.
    const auto sent = sim.net().stats().for_sender_proto(
        2, static_cast<std::uint8_t>(consensus::ProtoId::kSync));
    EXPECT_EQ(report.accounts[2].messages, sent.count) << to_string(proto);
  }
}

TEST(FaultPlan, ImmediateCrashAppliesBeforeStart) {
  // Node 1 leads round 1; dead from the outset, the very first round must
  // recover by view change — and nobody gets slashed for a crash.
  ScenarioSpec spec;
  spec.committee.n = 7;
  spec.seed = 1002;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 8;
  spec.faults.crash(1);
  Simulation sim(spec);
  EXPECT_TRUE(sim.net().crashed(1));
  sim.start();
  sim.run_until(sec(300));

  std::uint64_t vcs = 0;
  for (NodeId id = 2; id < 7; ++id) vcs += sim.prft(id).view_changes();
  EXPECT_GT(vcs, 0u) << "round 1 must have been abandoned";
  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_FALSE(sim.honest_player_slashed());
  for (NodeId id = 0; id < 7; ++id) {
    EXPECT_FALSE(sim.deposits().slashed(id));
  }
}

TEST(FaultPlan, OutOfRangeNodesRejected) {
  ScenarioSpec crash_spec;
  crash_spec.committee.n = 4;
  crash_spec.faults.crash(7);
  EXPECT_THROW(Simulation sim(crash_spec), std::invalid_argument);

  ScenarioSpec part_spec;
  part_spec.committee.n = 4;
  part_spec.faults.partition({{0, 1}, {2, 7}}, msec(1), msec(10));
  EXPECT_THROW(Simulation sim(part_spec), std::invalid_argument);
}

// Regression: Cluster::run_until never advances the clock past the last
// processed event, so a quiet stretch longer than the drive chunk must be
// jumped, not misread as a drained queue. With a microscopic chunk every
// real inter-event gap exceeds it; the run must still reach the target.
TEST(RunToCompletion, SurvivesEventGapsLongerThanChunk) {
  ScenarioSpec spec;
  spec.committee.n = 4;
  spec.seed = 2;
  spec.budget.target_blocks = 2;
  spec.budget.chunk = usec(1);
  spec.workload.txs = 6;
  Simulation sim(spec);
  const RunReport report = sim.run_to_completion();
  EXPECT_GE(report.min_height, 2u);
  EXPECT_TRUE(report.safe());
}

TEST(FaultPlan, ScheduledPartitionHealsAndCatchesUp) {
  // Partition one node away for a long stretch while the rest finalize
  // several blocks; on heal it must adopt the certified chain through the
  // Sync path and resume participation.
  ScenarioSpec spec;
  spec.committee.n = 7;
  spec.seed = 1010;
  spec.budget.target_blocks = 5;
  spec.workload.txs = 12;
  spec.faults.partition({{0, 1, 2, 3, 4, 5}, {6}}, usec(10), msec(2500));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(600));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.replica(6).chain().finalized_height(), 5u)
      << "the isolated node must fully catch up";
}

TEST(SimulationAccessors, PrftAccessIsTypeChecked) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kRaftLite;
  spec.committee.n = 4;
  Simulation sim(spec);
  EXPECT_THROW(static_cast<void>(sim.prft(0)), std::logic_error);

  Simulation psim(ScenarioSpec{});
  EXPECT_NO_THROW(static_cast<void>(psim.prft(0)));
}

TEST(RunReportSnapshot, ReflectsSimulationState) {
  ScenarioSpec spec;
  spec.committee.n = 4;
  spec.seed = 3;
  spec.budget.target_blocks = 2;
  spec.workload.txs = 6;
  Simulation sim(spec);

  const RunReport before = sim.report();
  EXPECT_EQ(before.min_height, 0u);
  EXPECT_EQ(before.messages, 0u);
  EXPECT_EQ(before.finalized_at, kSimTimeNever);

  sim.start();
  sim.run_until(sec(60));
  const RunReport after = sim.report();
  EXPECT_TRUE(after.safe());
  EXPECT_GE(after.min_height, 2u);
  EXPECT_GT(after.messages, 0u);
  EXPECT_NE(after.finalized_at, kSimTimeNever);
}

}  // namespace
}  // namespace ratcon::harness
