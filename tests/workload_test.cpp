// Tests for the src/workload subsystem: zipf sender sampling, the
// fixed-bucket latency histogram (layout, merge determinism, conservative
// quantiles), the bounded mempool's overflow/rollback interleavings, the
// workload-flag round-trip, and the engine itself driven through the
// Scenario harness (open-loop drain, closed-loop chaining, determinism).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "ledger/mempool.hpp"
#include "ledger/transaction.hpp"
#include "workload/latency.hpp"
#include "workload/spec.hpp"
#include "workload/zipf.hpp"

namespace ratcon {
namespace {

using ledger::make_transfer;
using ledger::Mempool;
using ledger::MempoolLimits;
using ledger::Transaction;
using workload::LatencyHistogram;
using workload::WorkloadSpec;
using workload::WorkloadStats;
using workload::ZipfSampler;

// ---------------------------------------------------------------- zipf --

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  Rng rng(42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t r = z.sample(rng);
    ASSERT_LT(r, 10u);
    ++counts[static_cast<std::size_t>(r)];
  }
  // Every rank hit, none wildly off the uniform expectation of 1000.
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  ZipfSampler z(1000, 1.2);
  Rng rng(7);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t r = z.sample(rng);
    ASSERT_LT(r, 1000u);
    ++counts[static_cast<std::size_t>(r)];
  }
  // Rank 0 is the hottest sender and the head dominates the tail.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  int head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) head += counts[static_cast<std::size_t>(i)];
  for (int i = 500; i < 1000; ++i) tail += counts[static_cast<std::size_t>(i)];
  EXPECT_GT(head, 5 * tail);
}

TEST(Zipf, DeterministicPerSeedAndPopulationOne) {
  ZipfSampler z(50, 0.99);
  Rng a(123), b(123);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(z.sample(a), z.sample(b));

  ZipfSampler one(1, 1.5);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one.sample(rng), 0u);
}

// ----------------------------------------------------- latency histogram --

TEST(LatencyHistogramTest, BucketLayoutCoversValues) {
  // Low values are exact (identity buckets); every value lies at or below
  // its bucket's inclusive upper bound, and bounds are monotone.
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_of(v), v);
  }
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 100ull, 1000ull, 123456ull,
                          (1ull << 40), (1ull << 62) - 1}) {
    const std::size_t b = LatencyHistogram::bucket_of(v);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    EXPECT_GE(LatencyHistogram::bucket_upper(b), v) << "value " << v;
    if (b > 0) {
      EXPECT_LT(LatencyHistogram::bucket_upper(b - 1), v) << "value " << v;
    }
  }
}

TEST(LatencyHistogramTest, EmptyAndBasicStats) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);

  h.record(10);
  h.record(20);
  h.record(-5);  // clamps to 0
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 20);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(LatencyHistogramTest, QuantilesConservativeAndClamped) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);
  // All samples identical: every quantile is >= the true value and <= the
  // observed max (the clamp), so it reports exactly the max here.
  EXPECT_EQ(h.p50(), 1000);
  EXPECT_EQ(h.p99(), 1000);
  EXPECT_EQ(h.quantile(1.0), 1000);

  LatencyHistogram spread;
  for (int i = 1; i <= 1000; ++i) spread.record(i);
  // Conservative: never understates the true percentile, never exceeds max.
  EXPECT_GE(spread.p50(), 500);
  EXPECT_GE(spread.p99(), 990);
  EXPECT_LE(spread.p99(), 1000);
}

TEST(LatencyHistogramTest, MergeEqualsConcatenation) {
  // The determinism contract: merging per-cell histograms must be
  // byte-identical to recording every sample into one histogram, in any
  // order — checkable with operator== because all state is integers.
  std::vector<SimTime> a = {1, 5, 80, 3000, 7, 1 << 20};
  std::vector<SimTime> b = {2, 5, 999999, 12, 0};
  LatencyHistogram ha, hb, all;
  for (SimTime v : a) ha.record(v);
  for (SimTime v : b) hb.record(v);
  for (SimTime v : b) all.record(v);  // reversed order on purpose
  for (SimTime v : a) all.record(v);
  ha.merge(hb);
  EXPECT_TRUE(ha == all);
  EXPECT_EQ(ha.total(), a.size() + b.size());

  // Merging an empty histogram is the identity.
  LatencyHistogram empty;
  LatencyHistogram copy = all;
  copy.merge(empty);
  EXPECT_TRUE(copy == all);
  empty.merge(all);
  EXPECT_TRUE(empty == all);
}

TEST(WorkloadStatsTest, MergeAndThroughput) {
  WorkloadStats a;
  a.submitted = 10;
  a.finalized = 10;
  a.first_submit = sec(1);
  a.last_finalize = sec(2);
  WorkloadStats b;
  b.submitted = 20;
  b.finalized = 20;
  b.first_submit = sec(3);
  b.last_finalize = sec(6);
  a.merge(b);
  EXPECT_EQ(a.submitted, 30u);
  EXPECT_EQ(a.finalized, 30u);
  EXPECT_EQ(a.first_submit, sec(1));
  EXPECT_EQ(a.last_finalize, sec(6));
  // 30 txs over 5 virtual seconds.
  EXPECT_DOUBLE_EQ(a.tx_per_sec(), 6.0);
}

// --------------------------------------------------------------- mempool --

TEST(MempoolLimitsTest, DuplicateSubmitIgnored) {
  Mempool pool;
  EXPECT_TRUE(pool.submit(make_transfer(1, 0), 10));
  EXPECT_FALSE(pool.submit(make_transfer(1, 0), 20));  // pending duplicate
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_EQ(pool.arrival_of(1), 10);  // first arrival wins

  pool.mark_included({make_transfer(1, 0)});
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_FALSE(pool.submit(make_transfer(1, 0), 30));  // included duplicate
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(MempoolLimitsTest, RestorePreservesArrivalAndOrder) {
  Mempool pool;
  ASSERT_TRUE(pool.submit(make_transfer(1, 0), 5));
  ASSERT_TRUE(pool.submit(make_transfer(2, 1), 8));
  ASSERT_TRUE(pool.submit(make_transfer(3, 2), 9));

  const auto batch = pool.select(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
  pool.mark_included(batch);
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_EQ(pool.arrival_of(1), kSimTimeNever);

  // Rollback: the block's transactions come back at the FRONT with their
  // original arrival times, so select order and censorship-latency
  // accounting survive the include -> rollback cycle.
  pool.restore(batch);
  EXPECT_EQ(pool.pending(), 3u);
  EXPECT_EQ(pool.arrival_of(1), 5);
  EXPECT_EQ(pool.arrival_of(2), 8);
  const auto again = pool.select(3);
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[0].id, 1u);
  EXPECT_EQ(again[1].id, 2u);
  EXPECT_EQ(again[2].id, 3u);
}

TEST(MempoolLimitsTest, EvictOldestOnOverflow) {
  Mempool pool(MempoolLimits{.max_pending = 2, .evict_oldest = true});
  EXPECT_TRUE(pool.submit(make_transfer(1, 0), 1));
  EXPECT_TRUE(pool.submit(make_transfer(2, 0), 2));
  // The newcomer is still admitted (evict-oldest favours freshness).
  EXPECT_TRUE(pool.submit(make_transfer(3, 0), 3));  // evicts id 1
  EXPECT_EQ(pool.pending(), 2u);
  EXPECT_EQ(pool.evicted(), 1u);
  EXPECT_EQ(pool.rejected(), 0u);
  EXPECT_FALSE(pool.has_tx(1));
  EXPECT_TRUE(pool.has_tx(2));
  EXPECT_TRUE(pool.has_tx(3));
  // Eviction fully forgets the transaction: it may be resubmitted.
  EXPECT_TRUE(pool.submit(make_transfer(4, 0), 4));  // evicts id 2
  EXPECT_TRUE(pool.has_tx(3));
  pool.mark_included(pool.select(2));
  EXPECT_TRUE(pool.submit(make_transfer(1, 0), 9));
  EXPECT_EQ(pool.arrival_of(1), 9);
}

TEST(MempoolLimitsTest, RejectNewcomerOnOverflow) {
  Mempool pool(MempoolLimits{.max_pending = 2, .evict_oldest = false});
  EXPECT_TRUE(pool.submit(make_transfer(1, 0), 1));
  EXPECT_TRUE(pool.submit(make_transfer(2, 0), 2));
  EXPECT_FALSE(pool.submit(make_transfer(3, 0), 3));
  EXPECT_EQ(pool.pending(), 2u);
  EXPECT_EQ(pool.rejected(), 1u);
  EXPECT_EQ(pool.evicted(), 0u);
  EXPECT_TRUE(pool.has_tx(1));
  EXPECT_FALSE(pool.has_tx(3));
  // A rejected transaction is not remembered: it can enter once room opens.
  pool.mark_included(pool.select(1));
  EXPECT_TRUE(pool.submit(make_transfer(3, 0), 5));
}

TEST(MempoolLimitsTest, CensorAndSizeLimitCompose) {
  Mempool pool;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(pool.submit(make_transfer(id, static_cast<NodeId>(id % 2)),
                            static_cast<SimTime>(id)));
  }
  // Censor odd senders; the max_txs limit applies to what is selected.
  const auto censor = [](const Transaction& tx) { return tx.sender == 1; };
  const auto batch = pool.select(2, censor);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 2u);
  EXPECT_EQ(batch[1].id, 4u);
}

TEST(MempoolLimitsTest, ByteBudgetStopsBatch) {
  Mempool pool;
  ASSERT_TRUE(pool.submit(make_transfer(1, 0, /*payload_size=*/100), 1));
  ASSERT_TRUE(pool.submit(make_transfer(2, 0, /*payload_size=*/100), 2));
  ASSERT_TRUE(pool.submit(make_transfer(3, 0, /*payload_size=*/100), 3));
  const std::size_t wire = make_transfer(9, 0, 100).wire_size();

  // Budget for exactly two transactions.
  const auto two = pool.select(10, 2 * wire, nullptr);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].id, 1u);
  EXPECT_EQ(two[1].id, 2u);

  // A budget smaller than any single transaction still ships the head
  // alone instead of starving the proposer forever.
  const auto one = pool.select(10, 8, nullptr);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].id, 1u);

  // Zero budget = unbounded bytes.
  EXPECT_EQ(pool.select(10, 0, nullptr).size(), 3u);
}

TEST(MempoolLimitsTest, IncludedHistoryIsBounded) {
  Mempool pool(MempoolLimits{.included_history = 3});
  for (std::uint64_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(pool.submit(make_transfer(id, 0), static_cast<SimTime>(id)));
    pool.mark_included({make_transfer(id, 0)});
  }
  // Recent inclusions are still remembered as duplicates...
  EXPECT_FALSE(pool.submit(make_transfer(6, 0), 100));
  // ...but ids beyond the history bound have been forgotten and may
  // re-enter (the documented trade-off of bounding known_).
  EXPECT_TRUE(pool.submit(make_transfer(1, 0), 101));
}

TEST(MempoolLimitsTest, HistoryPruningNeverDropsPendingEntries) {
  // A restored (rolled-back) transaction transitions included -> pending;
  // the lazy history pruning that runs on later inclusions must not erase
  // its pending state.
  Mempool pool(MempoolLimits{.included_history = 2});
  ASSERT_TRUE(pool.submit(make_transfer(1, 0), 5));
  pool.mark_included({make_transfer(1, 0)});
  pool.restore({make_transfer(1, 0)});  // back to pending, arrival 5
  for (std::uint64_t id = 2; id <= 5; ++id) {
    ASSERT_TRUE(pool.submit(make_transfer(id, 0), static_cast<SimTime>(id)));
    pool.mark_included({make_transfer(id, 0)});
  }
  EXPECT_TRUE(pool.has_tx(1));
  EXPECT_EQ(pool.arrival_of(1), 5);
  const auto batch = pool.select(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 1u);
}

// ----------------------------------------------------------- flags round --

std::vector<char*> to_argv(const std::string& prog,
                           std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(prog.data()));
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

void expect_roundtrip(const harness::WorkloadFlags& original) {
  std::vector<std::string> args = original.to_args();
  const std::string prog = "test";
  std::vector<char*> argv = to_argv(prog, args);
  const harness::Flags flags(static_cast<int>(argv.size()), argv.data());
  const harness::WorkloadFlags parsed = harness::parse_workload_flags(flags);
  EXPECT_TRUE(parsed == original);
}

TEST(WorkloadFlagsTest, RoundTripAllModes) {
  harness::WorkloadFlags fixed;
  fixed.spec = WorkloadSpec::fixed(12, msec(1), msec(2));
  expect_roundtrip(fixed);

  harness::WorkloadFlags open;
  open.spec = WorkloadSpec::open_loop(1234.5, 10000).with_zipf(0.99, 1000000);
  open.max_block_txs = 32;
  open.max_block_bytes = 1 << 16;
  open.mempool.max_pending = 4096;
  open.mempool.evict_oldest = false;
  expect_roundtrip(open);

  harness::WorkloadFlags closed;
  closed.spec =
      WorkloadSpec::closed_loop(64, 5000, msec(3)).with_payload(128);
  closed.mempool.max_pending = 100;
  expect_roundtrip(closed);
}

TEST(WorkloadFlagsTest, ParseUsesDefaultsForAbsentFlags) {
  harness::WorkloadFlags defaults;
  defaults.spec = WorkloadSpec::open_loop(2000.0, 10000);
  defaults.max_block_txs = 48;
  std::vector<std::string> args = {"--rate=500"};
  const std::string prog = "test";
  std::vector<char*> argv = to_argv(prog, args);
  const harness::Flags flags(static_cast<int>(argv.size()), argv.data());
  const harness::WorkloadFlags parsed =
      harness::parse_workload_flags(flags, defaults);
  EXPECT_EQ(parsed.spec.mode, workload::Arrival::kOpenLoop);
  EXPECT_DOUBLE_EQ(parsed.spec.rate, 500.0);
  EXPECT_EQ(parsed.spec.txs, 10000u);
  EXPECT_EQ(parsed.max_block_txs, 48u);
}

// ------------------------------------------------------------ the engine --

harness::RunReport run_spec(const harness::ScenarioSpec& spec) {
  harness::Simulation sim(spec);
  return sim.run_to_completion();
}

TEST(WorkloadEngineTest, OpenLoopDrainsAndMeasures) {
  harness::ScenarioSpec spec;
  spec.with_n(4).with_seed(3).with_workload(
      WorkloadSpec::open_loop(/*rate=*/4000.0, /*txs=*/200));
  spec.budget.target_blocks = 0;  // exit = engine drained
  spec.budget.horizon = sec(120);
  const harness::RunReport r = run_spec(spec);
  EXPECT_TRUE(r.safe());
  EXPECT_EQ(r.workload.submitted, 200u);
  EXPECT_EQ(r.workload.finalized, 200u);
  EXPECT_EQ(r.workload.latency.total(), 200u);
  EXPECT_GT(r.workload.tx_per_sec(), 0.0);
  EXPECT_GT(r.workload.latency.p99(), 0);
  EXPECT_GE(r.workload.latency.p99(), r.workload.latency.p50());
  EXPECT_LT(r.workload.first_submit, r.workload.last_finalize);
}

TEST(WorkloadEngineTest, ClosedLoopDrainsWithBoundedClients) {
  harness::ScenarioSpec spec;
  spec.with_n(4).with_seed(5).with_workload(
      WorkloadSpec::closed_loop(/*clients=*/3, /*txs=*/30, msec(2)));
  spec.budget.target_blocks = 0;
  spec.budget.horizon = sec(120);
  const harness::RunReport r = run_spec(spec);
  EXPECT_TRUE(r.safe());
  EXPECT_EQ(r.workload.submitted, 30u);
  EXPECT_EQ(r.workload.finalized, 30u);
  // Closed-loop submits serialize per client: a client's next transaction
  // only enters after its previous one finalized, so the submit stream
  // spans at least txs/clients consensus latencies.
  EXPECT_GT(r.workload.last_finalize - r.workload.first_submit, 0);
}

TEST(WorkloadEngineTest, RunsAreDeterministicPerSeed) {
  const auto once = [](std::uint64_t seed) {
    harness::ScenarioSpec spec;
    spec.with_n(4).with_seed(seed).with_workload(
        WorkloadSpec::open_loop(3000.0, 100).with_zipf(1.1, 500));
    spec.budget.target_blocks = 0;
    return run_spec(spec).workload;
  };
  const WorkloadStats a = once(11);
  const WorkloadStats b = once(11);
  EXPECT_TRUE(a == b);  // byte-identical, histogram included
  const WorkloadStats c = once(12);
  EXPECT_FALSE(a.latency == c.latency);  // different seed, different run
}

TEST(WorkloadEngineTest, ZipfSendersShowSkewInStats) {
  harness::ScenarioSpec spec;
  spec.with_n(4).with_seed(2).with_workload(
      WorkloadSpec::open_loop(4000.0, 300).with_zipf(1.2, 100));
  spec.budget.target_blocks = 0;
  const harness::RunReport r = run_spec(spec);
  EXPECT_GT(r.workload.distinct_senders, 5u);
  EXPECT_LT(r.workload.distinct_senders, 100u);
  // The hottest sender holds far more than a uniform 1/100 share.
  EXPECT_GT(r.workload.top_sender_txs, 300u / 20u);
}

TEST(WorkloadEngineTest, FixedModeMatchesLegacyPlanByteForByte) {
  // The engine's kFixed path replaces Simulation::inject_workload; the
  // traffic and ledgers it produces must be indistinguishable from the
  // legacy plan (same ids, times and senders — checked via the
  // deterministic RunReport observables).
  harness::ScenarioSpec spec;
  spec.with_n(4).with_seed(8).with_workload(/*txs=*/8);
  spec.budget.target_blocks = 3;
  const harness::RunReport r = run_spec(spec);
  EXPECT_TRUE(r.safe());
  EXPECT_EQ(r.workload.submitted, 8u);
  EXPECT_GT(r.workload.finalized, 0u);
  EXPECT_EQ(r.workload.latency.total(), r.workload.finalized);
  // kFixed does not gate completion: the run stops at the block target
  // exactly as before the engine existed.
  EXPECT_GE(r.live_min_height, 3u);
}

TEST(WorkloadEngineTest, MempoolCapShedsUnderOverload) {
  // Tiny pool + fixed-mode burst: overflow is shed and counted, the run
  // still completes its block target safely.
  harness::ScenarioSpec spec;
  spec.with_n(4).with_seed(4).with_workload(
      WorkloadSpec::fixed(/*txs=*/64, msec(1), /*interval=*/10));
  spec.committee.mempool.max_pending = 8;
  spec.committee.max_block_txs = 4;
  spec.budget.target_blocks = 3;
  const harness::RunReport r = run_spec(spec);
  EXPECT_TRUE(r.safe());
  EXPECT_EQ(r.workload.submitted, 64u);
  EXPECT_GT(r.workload.evicted, 0u);
  EXPECT_EQ(r.workload.rejected, 0u);
}

TEST(WorkloadEngineTest, BurstPhasesShapeArrivals) {
  // A burst envelope (4x for 50ms, then a lull) must change the arrival
  // timing relative to the same spec with a flat rate.
  const auto run_with_phases = [](std::vector<workload::PhaseSpec> ph) {
    harness::ScenarioSpec spec;
    spec.with_n(4).with_seed(6).with_workload(
        WorkloadSpec::open_loop(2000.0, 150).with_phases(std::move(ph)));
    spec.budget.target_blocks = 0;
    return run_spec(spec).workload;
  };
  const WorkloadStats flat = run_with_phases({});
  const WorkloadStats burst = run_with_phases(
      {{msec(50), 4.0}, {msec(50), 0.25}});
  EXPECT_EQ(flat.submitted, 150u);
  EXPECT_EQ(burst.submitted, 150u);
  EXPECT_EQ(flat.finalized, 150u);
  EXPECT_EQ(burst.finalized, 150u);
  // The envelope reshapes the arrival stream, so the measured latency
  // distribution differs from the flat run's.
  EXPECT_FALSE(flat.latency == burst.latency);
}

}  // namespace
}  // namespace ratcon
