// Unit tests for the discrete-event simulation substrate: event ordering,
// timers, the three network models of §3.3 (synchronous / partially
// synchronous / asynchronous), partitions, crash faults, and traffic stats.

#include <gtest/gtest.h>

#include <memory>

#include "common/serialize.hpp"
#include "net/cluster.hpp"
#include "net/event_queue.hpp"
#include "net/netmodel.hpp"

namespace ratcon::net {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  while (q.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  SimTime fired_at = -1;
  q.schedule_at(100, [&] {
    q.schedule_at(50, [&] { fired_at = q.now(); });  // in the past
  });
  while (q.step()) {
  }
  EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, EventsScheduledDuringStepRun) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1, [&] {
    ++count;
    q.schedule_in(1, [&] { ++count; });
  });
  while (q.step()) {
  }
  EXPECT_EQ(count, 2);
}

TEST(NetModels, SynchronousRespectsDelta) {
  SynchronousNet model(msec(10));
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const SimTime at = model.delivery_time(0, 1, 100, rng);
    EXPECT_GT(at, 100);
    EXPECT_LE(at, 100 + msec(10));
  }
}

TEST(NetModels, PartialSynchronyHoldsUntilGst) {
  PartialSynchronyNet model(msec(500), msec(10), 1.0);
  Rng rng(2);
  // Before GST, every held message lands after GST but within GST + Δ.
  for (int i = 0; i < 200; ++i) {
    const SimTime at = model.delivery_time(0, 1, msec(100), rng);
    EXPECT_GT(at, msec(500));
    EXPECT_LE(at, msec(510));
  }
  // After GST the network is synchronous.
  for (int i = 0; i < 200; ++i) {
    const SimTime at = model.delivery_time(0, 1, msec(600), rng);
    EXPECT_GT(at, msec(600));
    EXPECT_LE(at, msec(610));
  }
}

TEST(NetModels, PartialSynchronyProbabilisticHoldMixesBothPaths) {
  // The seed matrix drives this model with hold_probability < 1: some
  // pre-GST sends are held past GST, the rest take the heavy-delay path.
  // Either way delivery is strictly after the send and finite.
  PartialSynchronyNet model(msec(500), msec(10), 0.5);
  Rng rng(7);
  int held = 0;
  int prompt = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime at = model.delivery_time(0, 1, msec(100), rng);
    EXPECT_GT(at, msec(100));
    EXPECT_LT(at, kSimTimeNever);
    if (at > msec(500)) {
      ++held;
    } else {
      ++prompt;
    }
  }
  EXPECT_GT(held, 0) << "hold path never sampled";
  EXPECT_GT(prompt, 0) << "heavy-delay path never sampled";
}

TEST(NetModels, AsynchronousDeliveryIsFinite) {
  AsynchronousNet model(msec(20), sec(2));
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const SimTime at = model.delivery_time(0, 1, 0, rng);
    EXPECT_GT(at, 0);
    EXPECT_LE(at, sec(2));  // reliability: finite delay, always
  }
}

/// Test node: records received payloads and can echo.
class RecorderNode final : public INode {
 public:
  void on_message(Context& ctx, NodeId from, const Bytes& data) override {
    (void)ctx;
    received.emplace_back(from, data);
  }
  void on_timer(Context& ctx, std::uint64_t timer_id) override {
    (void)ctx;
    timers.push_back(timer_id);
  }
  std::vector<std::pair<NodeId, Bytes>> received;
  std::vector<std::uint64_t> timers;
};

Bytes typed_payload(std::uint8_t proto, std::uint8_t type, std::size_t pad) {
  Bytes b = {proto, type};
  b.resize(2 + pad);
  return b;
}

TEST(Cluster, DeliversUnicastAndBroadcast) {
  Cluster cluster(make_synchronous(msec(5)), 1);
  std::vector<RecorderNode*> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<RecorderNode>();
    nodes.push_back(node.get());
    cluster.add_node(std::move(node));
  }
  cluster.schedule(0, [&cluster] {
    Context ctx(cluster, 0);
    ctx.send(1, typed_payload(1, 1, 10));
    ctx.broadcast(typed_payload(1, 2, 20));
  });
  cluster.run_until(sec(1));

  EXPECT_EQ(nodes[1]->received.size(), 2u);  // unicast + broadcast
  EXPECT_EQ(nodes[2]->received.size(), 1u);  // broadcast only
  EXPECT_EQ(nodes[0]->received.size(), 1u);  // self-delivery of broadcast
}

TEST(Cluster, StatsCountNetworkTrafficOnly) {
  Cluster cluster(make_synchronous(msec(5)), 1);
  for (int i = 0; i < 4; ++i) cluster.add_node(std::make_unique<RecorderNode>());
  cluster.schedule(0, [&cluster] {
    Context ctx(cluster, 0);
    ctx.broadcast(typed_payload(7, 3, 30));
  });
  cluster.run_until(sec(1));

  // 3 network sends (self-delivery is free), 32 bytes each.
  const MsgCounter total = cluster.stats().total();
  EXPECT_EQ(total.count, 3u);
  EXPECT_EQ(total.bytes, 3u * 32u);
  EXPECT_EQ(cluster.stats().for_type(7, 3).count, 3u);
  EXPECT_EQ(cluster.stats().for_type(7, 4).count, 0u);
}

TEST(Cluster, CrashedNodesReceiveNothing) {
  Cluster cluster(make_synchronous(msec(5)), 1);
  std::vector<RecorderNode*> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<RecorderNode>();
    nodes.push_back(node.get());
    cluster.add_node(std::move(node));
  }
  cluster.crash(2);
  cluster.schedule(0, [&cluster] {
    Context ctx(cluster, 0);
    ctx.broadcast(typed_payload(1, 1, 0));
  });
  cluster.run_until(sec(1));
  EXPECT_EQ(nodes[1]->received.size(), 1u);
  EXPECT_TRUE(nodes[2]->received.empty());
}

TEST(Cluster, TimersFireAndSupersede) {
  Cluster cluster(make_synchronous(msec(5)), 1);
  auto owned = std::make_unique<RecorderNode>();
  RecorderNode* node = owned.get();
  cluster.add_node(std::move(owned));

  cluster.schedule(0, [&cluster] {
    Context ctx(cluster, 0);
    ctx.set_timer(1, msec(10));
    ctx.set_timer(2, msec(20));
    ctx.set_timer(1, msec(30));  // re-arm supersedes the first
  });
  cluster.run_until(sec(1));
  ASSERT_EQ(node->timers.size(), 2u);
  EXPECT_EQ(node->timers[0], 2u);  // 20ms
  EXPECT_EQ(node->timers[1], 1u);  // 30ms (re-armed)
}

TEST(Cluster, CancelledTimerNeverFires) {
  Cluster cluster(make_synchronous(msec(5)), 1);
  auto owned = std::make_unique<RecorderNode>();
  RecorderNode* node = owned.get();
  cluster.add_node(std::move(owned));

  cluster.schedule(0, [&cluster] {
    Context ctx(cluster, 0);
    ctx.set_timer(1, msec(10));
  });
  cluster.schedule(msec(5), [&cluster] {
    Context ctx(cluster, 0);
    ctx.cancel_timer(1);
  });
  cluster.run_until(sec(1));
  EXPECT_TRUE(node->timers.empty());
}

TEST(Cluster, PartitionBlocksCrossTrafficUntilHeal) {
  Cluster cluster(make_synchronous(msec(5)), 1);
  std::vector<RecorderNode*> nodes;
  for (int i = 0; i < 4; ++i) {
    auto node = std::make_unique<RecorderNode>();
    nodes.push_back(node.get());
    cluster.add_node(std::move(node));
  }
  cluster.set_partition({{0, 1}, {2, 3}}, msec(100));
  cluster.schedule(0, [&cluster] {
    Context ctx(cluster, 0);
    ctx.send(1, typed_payload(1, 1, 0));  // same side
    ctx.send(2, typed_payload(1, 2, 0));  // crosses
  });

  cluster.run_until(msec(50));
  EXPECT_EQ(nodes[1]->received.size(), 1u);
  EXPECT_TRUE(nodes[2]->received.empty()) << "cross traffic held";

  cluster.run_until(msec(200));
  EXPECT_EQ(nodes[2]->received.size(), 1u) << "delivered after heal";
}

TEST(Cluster, UngroupedNodeCrossesPartitionFreely) {
  // The adversary's position in the paper's partition arguments: member of
  // no group, reachable from both sides.
  Cluster cluster(make_synchronous(msec(5)), 1);
  std::vector<RecorderNode*> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<RecorderNode>();
    nodes.push_back(node.get());
    cluster.add_node(std::move(node));
  }
  cluster.set_partition({{0}, {1}}, sec(10));  // node 2 ungrouped
  cluster.schedule(0, [&cluster] {
    Context ctx(cluster, 2);
    ctx.send(0, typed_payload(1, 1, 0));
    ctx.send(1, typed_payload(1, 2, 0));
  });
  cluster.run_until(msec(100));
  EXPECT_EQ(nodes[0]->received.size(), 1u);
  EXPECT_EQ(nodes[1]->received.size(), 1u);
}

TEST(Cluster, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    Cluster cluster(make_asynchronous(msec(10), sec(1)), seed);
    auto owned = std::make_unique<RecorderNode>();
    RecorderNode* node = owned.get();
    cluster.add_node(std::move(owned));
    cluster.add_node(std::make_unique<RecorderNode>());
    for (int i = 0; i < 50; ++i) {
      cluster.schedule(i, [&cluster, i] {
        Context ctx(cluster, 1);
        ctx.send(0, typed_payload(1, static_cast<std::uint8_t>(i), 0));
      });
    }
    cluster.run_until(sec(5));
    Bytes trace;
    for (const auto& [from, data] : node->received) {
      trace.push_back(data[1]);
    }
    return trace;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // async reorders differ across seeds
}

}  // namespace
}  // namespace ratcon::net
