// Unit tests for the experiment harness: table rendering, power-law
// fitting, CLI flags, and the JSON artifact writer.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "harness/fit.hpp"
#include "harness/flags.hpp"
#include "harness/jsonio.hpp"
#include "harness/table.hpp"

namespace ratcon::harness {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string out = t.render(0);
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(Formatting, Numbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(2.5, 1), "2.5x");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt_bytes(3u << 20), "3.0 MiB");
}

TEST(Formatting, UnitBoundariesAreExact) {
  // The KiB/MiB switchovers must not be off by one in either direction.
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_bytes(0), "0 B");
  EXPECT_EQ(fmt_bytes(1023), "1023 B");
  EXPECT_EQ(fmt_bytes(1024), "1.0 KiB");
  EXPECT_EQ(fmt_bytes((1u << 20) - 1), "1024.0 KiB");
  EXPECT_EQ(fmt_bytes(1u << 20), "1.0 MiB");
}

TEST(PowerFit, RecoversExactExponent) {
  // y = 3 * x^2.
  std::vector<double> x = {2, 4, 8, 16, 32};
  std::vector<double> y;
  for (double v : x) y.push_back(3 * v * v);
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(PowerFit, RecoversCubicWithNoise) {
  std::vector<double> x = {4, 8, 16, 32};
  std::vector<double> y;
  double wiggle = 0.95;
  for (double v : x) {
    y.push_back(wiggle * v * v * v);
    wiggle += 0.04;
  }
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 3.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(PowerFit, RejectsBadInput) {
  EXPECT_THROW(fit_power_law({1}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({0, 2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2}, {-1, 2}), std::invalid_argument);
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",  "--n=9",      "--seed", "42",
                        "--verbose", "--name=test", "--rate", "2.5"};
  Flags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("n", 0), 9);
  EXPECT_EQ(flags.get_int("seed", 0), 42);
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_EQ(flags.get_int("verbose", 0), 1);
  EXPECT_EQ(flags.get_str("name", ""), "test");
  EXPECT_NEAR(flags.get_double("rate", 0), 2.5, 1e-12);
}

TEST(FlagsTest, FallbacksApply) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_EQ(flags.get_str("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.has("missing"));
}

// Minimal structural JSON validity check, enough to catch the failure mode
// the tests below guard against (a bare `nan`/`inf` token leaking into the
// output): balanced containers outside strings, and every value token is
// null/true/false/number/string.
bool json_is_valid(const std::string& text) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' ||
                               text[i] == '\t' || text[i] == '\r')) {
      ++i;
    }
  };
  // Recursive-descent value parser, implemented iteratively with an
  // explicit container stack ('o' = object expecting key, 'a' = array).
  std::vector<char> stack;
  const auto parse_scalar = [&]() -> bool {
    if (text.compare(i, 4, "null") == 0 || text.compare(i, 4, "true") == 0) {
      i += 4;
      return true;
    }
    if (text.compare(i, 5, "false") == 0) {
      i += 5;
      return true;
    }
    if (text[i] == '"') {
      for (++i; i < text.size(); ++i) {
        if (text[i] == '\\') {
          ++i;
        } else if (text[i] == '"') {
          ++i;
          return true;
        }
      }
      return false;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
            text[i] == '-' || text[i] == '+' || text[i] == '.' ||
            text[i] == 'e' || text[i] == 'E')) {
      ++i;
    }
    if (i == start) return false;
    char* end = nullptr;
    const std::string tok = text.substr(start, i - start);
    std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
  };
  bool expect_value = true;
  while (true) {
    skip_ws();
    if (i >= text.size()) break;
    const char c = text[i];
    if (expect_value) {
      if (c == '{') {
        stack.push_back('o');
        ++i;
        skip_ws();
        if (i < text.size() && text[i] == '}') {
          stack.pop_back();
          ++i;
          expect_value = false;
        } else {
          // Expect a key string.
          if (i >= text.size() || text[i] != '"' || !parse_scalar()) {
            return false;
          }
          skip_ws();
          if (i >= text.size() || text[i] != ':') return false;
          ++i;
        }
        continue;
      }
      if (c == '[') {
        stack.push_back('a');
        ++i;
        skip_ws();
        if (i < text.size() && text[i] == ']') {
          stack.pop_back();
          ++i;
          expect_value = false;
        }
        continue;
      }
      if (!parse_scalar()) return false;
      expect_value = false;
      continue;
    }
    // After a value: comma, or container close.
    if (c == ',') {
      ++i;
      if (stack.empty()) return false;
      if (stack.back() == 'o') {
        skip_ws();
        if (i >= text.size() || text[i] != '"' || !parse_scalar()) {
          return false;
        }
        skip_ws();
        if (i >= text.size() || text[i] != ':') return false;
        ++i;
      }
      expect_value = true;
      continue;
    }
    if (c == '}' || c == ']') {
      if (stack.empty() || stack.back() != (c == '}' ? 'o' : 'a')) {
        return false;
      }
      stack.pop_back();
      ++i;
      continue;
    }
    return false;
  }
  return stack.empty() && !expect_value;
}

TEST(JsonWriterTest, ValidatorAcceptsAndRejectsSanely) {
  EXPECT_TRUE(json_is_valid(R"({"a":[1,2.5,null,"s"],"b":{"c":true}})"));
  EXPECT_TRUE(json_is_valid(R"([])"));
  EXPECT_FALSE(json_is_valid(R"({"a":nan})"));
  EXPECT_FALSE(json_is_valid(R"({"a":inf})"));
  EXPECT_FALSE(json_is_valid(R"({"a":1)"));
  EXPECT_FALSE(json_is_valid(R"({"a" 1})"));
}

// Regression gate for the bench artifacts: a report whose doubles went
// non-finite (NaN utility, inf ratio, never-recovered latency) must still
// serialize to PARSEABLE JSON — value(double) emits null for non-finite
// input instead of the locale/printf "nan"/"inf" tokens that would corrupt
// BENCH_*.json.
TEST(JsonWriterTest, NonFiniteDoublesEmitNullAndStayParseable) {
  JsonWriter json;
  json.begin_object();
  json.key("nan").value(std::nan(""));
  json.key("pos_inf").value(std::numeric_limits<double>::infinity());
  json.key("neg_inf").value(-std::numeric_limits<double>::infinity());
  json.key("finite").value(0.1);
  json.key("nested").begin_array();
  json.value(std::nan(""));
  json.value(1e308);
  json.end_array();
  json.end_object();
  const std::string text = json.str();
  EXPECT_NE(text.find("\"nan\":null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"pos_inf\":null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"neg_inf\":null"), std::string::npos) << text;
  EXPECT_TRUE(json_is_valid(text)) << text;
}

// Round-trip precision: to_chars shortest form must re-parse to the exact
// same bits for representative doubles (wall-clock ms, utilities, ratios).
TEST(JsonWriterTest, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324,
                         123456.789012345, -0.0}) {
    JsonWriter json;
    json.begin_array();
    json.value(v);
    json.end_array();
    const std::string text = json.str();
    ASSERT_GE(text.size(), 3u);
    const std::string tok = text.substr(1, text.size() - 2);
    EXPECT_EQ(std::strtod(tok.c_str(), nullptr), v) << tok;
  }
}

}  // namespace
}  // namespace ratcon::harness
