// Unit tests for the experiment harness: table rendering, power-law
// fitting, and CLI flags.

#include <gtest/gtest.h>

#include <cmath>

#include "harness/fit.hpp"
#include "harness/flags.hpp"
#include "harness/table.hpp"

namespace ratcon::harness {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string out = t.render(0);
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(Formatting, Numbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(2.5, 1), "2.5x");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt_bytes(3u << 20), "3.0 MiB");
}

TEST(Formatting, UnitBoundariesAreExact) {
  // The KiB/MiB switchovers must not be off by one in either direction.
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_bytes(0), "0 B");
  EXPECT_EQ(fmt_bytes(1023), "1023 B");
  EXPECT_EQ(fmt_bytes(1024), "1.0 KiB");
  EXPECT_EQ(fmt_bytes((1u << 20) - 1), "1024.0 KiB");
  EXPECT_EQ(fmt_bytes(1u << 20), "1.0 MiB");
}

TEST(PowerFit, RecoversExactExponent) {
  // y = 3 * x^2.
  std::vector<double> x = {2, 4, 8, 16, 32};
  std::vector<double> y;
  for (double v : x) y.push_back(3 * v * v);
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(PowerFit, RecoversCubicWithNoise) {
  std::vector<double> x = {4, 8, 16, 32};
  std::vector<double> y;
  double wiggle = 0.95;
  for (double v : x) {
    y.push_back(wiggle * v * v * v);
    wiggle += 0.04;
  }
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 3.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(PowerFit, RejectsBadInput) {
  EXPECT_THROW(fit_power_law({1}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({0, 2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2}, {-1, 2}), std::invalid_argument);
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",  "--n=9",      "--seed", "42",
                        "--verbose", "--name=test", "--rate", "2.5"};
  Flags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("n", 0), 9);
  EXPECT_EQ(flags.get_int("seed", 0), 42);
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_EQ(flags.get_int("verbose", 0), 1);
  EXPECT_EQ(flags.get_str("name", ""), "test");
  EXPECT_NEAR(flags.get_double("rate", 0), 2.5, 1e-12);
}

TEST(FlagsTest, FallbacksApply) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_EQ(flags.get_str("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.has("missing"));
}

}  // namespace
}  // namespace ratcon::harness
