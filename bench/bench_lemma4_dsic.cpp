// Reproduces Lemma 4 (§6, Appendix F): in pRFT under threat model
// ⟨(P,K,T), θ=1, ⌈n/4⌉−1⟩ with k + t < n/2, following the protocol
// honestly (π_0) is *dominant-strategy* incentive compatible: for every
// rational player, U(π_0) >= U(π) for every strategy π, whatever the
// others do.
//
// Migrated onto the empirical game engine (src/rational): the candidate's
// strategies are assigned through the StrategyCatalog, the realized runs
// are paid out by the PayoffAccountant (per-height σ classification,
// penalty events from the deposit ledger — no hand-reconstructed outcome
// streams), and the DeviationExplorer closes with an ε-best-response
// certificate over the full executable strategy space.
//
// `--smoke` runs the reduced configuration CI exercises on every push.

#include <cstdio>
#include <string>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "rational/catalog.hpp"
#include "rational/explorer.hpp"
#include "rational/payoff.hpp"

using namespace ratcon;
using rational::PayoffAccountant;
using rational::PayoffParams;
using rational::PayoffReport;
using rational::ProfileSpec;

namespace {

constexpr std::uint32_t kN = 9;
constexpr NodeId kCandidate = 3;  // the rational player under evaluation

struct Row {
  std::uint64_t blocks = 0;
  bool forked = false;
  bool candidate_slashed = false;
  double utility = 0;
};

/// One strategy evaluation: candidate plays `strategy` (with the Appendix-F
/// collusion backdrop for π_fork: Byzantine players 0..1 and rational
/// colluder 2 join the double-signing, k + t = 4 < n/2), run, account.
Row run(game::Strategy strategy, std::uint64_t seed) {
  harness::ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = seed;
  spec.budget.target_blocks = 4;
  spec.budget.horizon = sec(300);
  spec.workload.txs = 8;
  spec.workload.interval = msec(1);

  ProfileSpec profile;
  if (strategy != game::Strategy::kHonest) {
    profile.strategies[kCandidate] = strategy;
  }
  if (strategy == game::Strategy::kDoubleSign) {
    for (NodeId id : {0u, 1u, 2u}) {
      profile.strategies[id] = game::Strategy::kDoubleSign;
    }
  }
  rational::apply_profile(spec, profile);

  harness::Simulation sim(spec);
  (void)sim.run_to_completion();

  PayoffParams params;  // alpha = 1, L = 10, delta = 0.9
  params.thetas[kCandidate] = 1;
  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);

  Row row;
  row.blocks = sim.max_height();
  row.forked = !sim.agreement_holds();
  row.candidate_slashed = sim.deposits().slashed(kCandidate);
  row.utility = report.of(kCandidate).utility;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const bool smoke = flags.has("smoke");

  std::printf("==========================================================\n");
  std::printf("Lemma 4 — honesty is DSIC for theta=1 players in pRFT\n");
  std::printf("==========================================================\n\n");
  std::printf("n = %u, t0 = 2, k + t < n/2. Candidate rational player: P%u "
              "(theta = 1).\nalpha = 1, L = 10, delta = 0.9. Strategies "
              "executed by the StrategyCatalog,\nutilities measured by the "
              "PayoffAccountant.%s\n\n",
              kN, kCandidate, smoke ? "  [smoke]" : "");

  harness::Table table({"strategy pi", "blocks", "fork?",
                        "candidate slashed?", "U(pi, theta=1)"});
  double u_honest = 0, u_abs = 0, u_fork = 0;
  Row fork_row;
  for (game::Strategy strategy :
       {game::Strategy::kHonest, game::Strategy::kAbstain,
        game::Strategy::kDoubleSign}) {
    const Row row = run(strategy, 600);
    if (strategy == game::Strategy::kHonest) u_honest = row.utility;
    if (strategy == game::Strategy::kAbstain) u_abs = row.utility;
    if (strategy == game::Strategy::kDoubleSign) {
      u_fork = row.utility;
      fork_row = row;
    }
    table.add_row({game::to_string(strategy), std::to_string(row.blocks),
                   row.forked ? "YES" : "no",
                   row.candidate_slashed ? "yes (PoF burned L)" : "no",
                   harness::fmt(row.utility, 2)});
  }
  table.print();

  bool ok = u_honest >= u_abs && u_honest >= u_fork && u_fork < 0 &&
            !fork_row.forked && fork_row.candidate_slashed;
  std::printf("\nDominance check: U(pi_0) = %.2f >= U(pi_abs) = %.2f and "
              ">= U(pi_fork) = %.2f\n",
              u_honest, u_abs, u_fork);
  std::printf("pi_fork analysis (App. F): the double-sign either gets "
              "caught in the PoF (penalty L,\nrealized above), causes a "
              "view-change (sigma_NP, payoff -alpha), or cannot reach two\n"
              "conflicting quorums (k + t + 2*t0 < n) — never sigma_Fork. "
              "Fork observed: %s.\n",
              fork_row.forked ? "YES (bug)" : "no");

  // ε-best-response certificate over the executable strategy space: a lone
  // θ=1 deviator gains nothing from any unilateral strategy switch.
  rational::ExplorerSpec cert;
  cert.protocols = {harness::Protocol::kPrft};
  cert.committee_sizes = {kN};
  cert.nets = {harness::NetKind::kSynchronous};
  cert.seeds = smoke ? std::vector<std::uint64_t>{600}
                     : std::vector<std::uint64_t>{600, 601};
  cert.players = {kCandidate};
  cert.strategy_space = {game::Strategy::kHonest, game::Strategy::kAbstain,
                         game::Strategy::kPartialCensor,
                         game::Strategy::kLazyVote,
                         game::Strategy::kDoubleSign};
  cert.theta = 1;
  cert.epsilon = 0.05;
  cert.target_blocks = smoke ? 3 : 4;
  cert.workload_txs = 6;
  const rational::ExplorerReport report = explore(cert);
  std::printf("\nDeviationExplorer certificate (unilateral, theta = 1):\n%s",
              report.summary().c_str());
  ok = ok && report.all_eps_equilibria();

  std::printf("\n[lemma4] %s: pi_0 is dominant for the rational player — "
              "pRFT is DSIC, not just NIC.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
