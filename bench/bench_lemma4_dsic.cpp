// Reproduces Lemma 4 (§6, Appendix F): in pRFT under threat model
// ⟨(P,K,T), θ=1, ⌈n/4⌉−1⟩ with k + t < n/2, following the protocol
// honestly (π_0) is *dominant-strategy* incentive compatible: for every
// rational player, U(π_0) >= U(π) for every strategy π, whatever the
// others do.
//
// The bench evaluates each strategy in the paper's strategy space
// empirically: the candidate player P4 plays π against pRFT (n = 9), the
// realized per-round system states are mapped through Table 2 (θ = 1) plus
// the collateral penalty, and the discounted utility of Eq. 1 is computed.

#include <cstdio>
#include <memory>

#include "adversary/behaviors.hpp"
#include "adversary/fork_agent.hpp"
#include "game/utility.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

constexpr std::uint32_t kN = 9;
constexpr NodeId kCandidate = 3;  // the rational player under evaluation

struct Result {
  std::uint64_t blocks = 0;
  std::uint64_t rounds = 0;
  bool forked = false;
  bool candidate_slashed = false;
};

/// Reconstructs a per-round outcome sequence for the candidate and applies
/// Eq. 1. Successful rounds are σ_0 (payoff 0 for θ=1); aborted rounds are
/// σ_NP (−α); a fork round would pay +α; the collateral loss L lands once,
/// at the first aborted round (when the Expose that burned it circulated).
double utility_theta1(const Result& r, const game::UtilityParams& params) {
  std::vector<game::RoundOutcome> rounds;
  const std::uint64_t aborted = r.rounds > r.blocks ? r.rounds - r.blocks : 0;
  bool charged = false;
  for (std::uint64_t i = 0; i < r.rounds; ++i) {
    game::RoundOutcome out;
    if (r.forked) {
      out.state = game::SystemState::kFork;
    } else if (i < aborted) {
      out.state = game::SystemState::kNoProgress;
    } else {
      out.state = game::SystemState::kHonest;
    }
    if (r.candidate_slashed && !charged && i < aborted) {
      out.penalized = true;
      charged = true;
    }
    rounds.push_back(out);
  }
  return game::discounted_utility(rounds, 1, params);
}

Result run(const std::string& strategy, std::uint64_t seed) {
  // Collusion backdrop for π_fork: players 0..1 are Byzantine (t = 2 = t0)
  // and player 2 is a fellow rational colluder, so k + t = 4 < n/2 — the
  // largest coalition the candidate could possibly recruit. Side A plus
  // the coalition reaches the quorum, which is what lets the double-sign
  // produce commit-level evidence (and get the whole coalition slashed).
  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = kN;
  plan->coalition = {0, 1, 2, kCandidate};
  plan->side_a = {4, 5, 6};
  plan->side_b = {7, 8};

  harness::ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = seed;
  spec.budget.target_blocks = 4;
  spec.workload.txs = 8;
  spec.workload.interval = msec(1);
  if (strategy == "pi_abs") {
    spec.adversary.behaviors[kCandidate] =
        std::make_shared<adversary::AbstainBehavior>();
  }
  if (strategy == "pi_fork") {
    spec.adversary.node_factory =
        [plan](NodeId id, const harness::NodeEnv& env)
        -> std::unique_ptr<consensus::IReplica> {
      if (plan->coalition.count(id)) {
        return std::make_unique<adversary::ForkAgentNode>(
            harness::make_prft_deps(id, env), plan);
      }
      return nullptr;
    };
  }
  harness::Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  Result r;
  r.blocks = sim.max_height();
  for (NodeId id = 0; id < kN; ++id) {
    r.rounds = std::max(r.rounds, sim.prft(id).current_round());
  }
  r.rounds = r.rounds > 0 ? r.rounds - 1 : 0;  // rounds completed
  r.forked = !sim.agreement_holds();
  r.candidate_slashed = sim.deposits().slashed(kCandidate);
  return r;
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Lemma 4 — honesty is DSIC for theta=1 players in pRFT\n");
  std::printf("==========================================================\n\n");
  std::printf("n = %u, t0 = 2, k + t < n/2. Candidate rational player: P%u "
              "(theta = 1).\nalpha = 1, L = 10, delta = 0.9.\n\n",
              kN, kCandidate);

  const game::UtilityParams params{1.0, 10.0, 0.9};
  harness::Table table({"strategy pi", "blocks", "rounds", "fork?",
                        "candidate slashed?", "U(pi, theta=1)"});
  double u_honest = 0, u_abs = 0, u_fork = 0;
  Result fork_result;
  for (const char* strategy : {"pi_0", "pi_abs", "pi_fork"}) {
    const Result r = run(strategy, 600);
    const double u = utility_theta1(r, params);
    if (std::string(strategy) == "pi_0") u_honest = u;
    if (std::string(strategy) == "pi_abs") u_abs = u;
    if (std::string(strategy) == "pi_fork") {
      u_fork = u;
      fork_result = r;
    }
    table.add_row({strategy, std::to_string(r.blocks),
                   std::to_string(r.rounds), r.forked ? "YES" : "no",
                   r.candidate_slashed ? "yes (PoF burned L)" : "no",
                   harness::fmt(u, 2)});
  }
  table.print();

  const bool ok = u_honest >= u_abs && u_honest >= u_fork && u_fork < 0 &&
                  !fork_result.forked && fork_result.candidate_slashed;
  std::printf("\nDominance check: U(pi_0) = %.2f >= U(pi_abs) = %.2f and "
              ">= U(pi_fork) = %.2f\n",
              u_honest, u_abs, u_fork);
  std::printf("pi_fork analysis (App. F): the double-sign either gets "
              "caught in the PoF (penalty L,\nrealized above), causes a "
              "view-change (sigma_NP, payoff -alpha), or cannot reach two\n"
              "conflicting quorums (k + t + 2*t0 < n) — never sigma_Fork. "
              "Fork observed: %s.\n",
              fork_result.forked ? "YES (bug)" : "no");
  std::printf("\n[lemma4] %s: pi_0 is dominant for the rational player — "
              "pRFT is DSIC, not just NIC.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
