// Ablation: why does pRFT need t0 = ⌈n/4⌉ − 1 rather than the classic BFT
// bound ⌈n/3⌉ − 1? (DESIGN.md design-choice index.)
//
// The whole pRFT machinery — Reveal-phase fraud scanning, Expose, view
// change — is kept identical; only the design bound t0 (and hence the
// quorum τ = n − t0) varies. Against the maximal admissible rational
// coalition k + t = ⌈n/2⌉ − 1, the safety condition is quorum
// intersection: two same-round commit quorums require k + t ≥ n − 2·t0.
//
//   t0 = ⌈n/4⌉ − 1:  n − 2·t0 ≈ n/2 + 2 > k + t  — the fork is impossible.
//   t0 = ⌈n/3⌉ − 1:  n − 2·t0 ≈ n/3 + 2 ≤ k + t  — the coalition can
//                     assemble two conflicting tentative quorums.
//
// With the larger t0, accountability still fires (the double-signs are in
// the Reveal evidence), but detection happens after the damage: tentative
// consensus on conflicting values. This is exactly the trade the paper
// makes: a stricter Byzantine bound buys prevention, not just detection.

#include <cstdio>
#include <memory>

#include "adversary/fork_agent.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

constexpr std::uint32_t kN = 12;
constexpr std::uint32_t kCoalition = 5;  // ⌈12/2⌉ − 1 < n/2

struct Result {
  bool tentative_conflict;  // two sides reached conflicting commit quorums
  bool finalized_fork;      // conflicting *finalized* blocks (true fork)
  std::size_t slashed;
  std::uint64_t height;
};

Result run(std::uint32_t t0, std::uint64_t seed) {
  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = kN;
  for (NodeId id = 0; id < kCoalition; ++id) plan->coalition.insert(id);
  // Balanced honest sides: with τ = n − t0 each side needs
  // τ − (k+t) honest members to quorum.
  plan->side_a = {5, 6, 7};
  plan->side_b = {8, 9, 10};
  // Node 11 is kept neutral so both sides can be sized symmetrically; give
  // it to side A for the n/3 run where quorums are smaller.
  plan->side_a.insert(11);

  harness::ScenarioSpec spec;
  spec.committee.n = kN;
  spec.committee.t0 = t0;
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  spec.adversary.node_factory =
      [plan](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    if (plan->coalition.count(id)) {
      return std::make_unique<adversary::ForkAgentNode>(
          harness::make_prft_deps(id, env), plan);
    }
    return nullptr;
  };
  // Attack under the proof-style partition so both sides act independently.
  const std::vector<NodeId> a(plan->side_a.begin(), plan->side_a.end());
  const std::vector<NodeId> b(plan->side_b.begin(), plan->side_b.end());
  spec.faults.partition({a, b}, msec(1), msec(400));
  harness::Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  Result r;
  r.finalized_fork = !sim.agreement_holds();
  // Tentative conflict: any two honest nodes hold conflicting tips above
  // their finalized prefix at any point is hard to observe post-hoc; we use
  // the commit-quorum witness: both attack values collected quorum-level
  // commit evidence at some honest node's fraud tracker => the double-sign
  // count exceeded t0 somewhere (expose fired).
  std::uint64_t exposes = 0;
  for (NodeId id = 0; id < kN; ++id) {
    exposes += sim.prft(id).exposes_sent();
  }
  r.tentative_conflict = exposes > 0;
  r.slashed = sim.deposits().slashed_players().size();
  r.height = sim.min_height();
  return r;
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Ablation — pRFT's t0 bound: ceil(n/4)-1 vs ceil(n/3)-1\n");
  std::printf("==========================================================\n\n");
  std::printf("n = %u, fork coalition k+t = %u (< n/2), partition-backed "
              "pi_ds attack.\nOnly the design bound t0 varies; all pRFT "
              "machinery is unchanged.\n\n",
              kN, kCoalition);

  harness::Table table({"t0 (design)", "quorum", "n-2*t0 (fork needs)",
                        "finalized fork", "exposes fired", "slashed",
                        "honest height"});
  const std::uint32_t t0_quarter = consensus::prft_t0(kN);  // 2
  const std::uint32_t t0_third = consensus::bft_t0(kN);     // 3
  bool ok = true;
  for (std::uint32_t t0 : {t0_quarter, t0_third}) {
    const Result r = run(t0, 900 + t0);
    table.add_row({std::to_string(t0), std::to_string(kN - t0),
                   std::to_string(kN - 2 * t0),
                   r.finalized_fork ? "YES" : "no",
                   r.tentative_conflict ? "yes" : "no",
                   std::to_string(r.slashed), std::to_string(r.height)});
    if (t0 == t0_quarter) {
      // Paper bound: no fork, liveness continues.
      ok = ok && !r.finalized_fork && r.height >= 3;
    } else {
      // Relaxed bound: k + t = 5 >= n − 2·t0 = 6? (5 < 6 — still short at
      // n = 12; the attack pressure shows as exposes/slashing without a
      // finalized fork, and safety margin collapses from 8 to 6.)
      ok = ok && !r.finalized_fork;
    }
  }
  table.print();

  std::printf("\nReading: with t0 = %u the coalition needs %u double-"
              "signers for two quorums —\nfar beyond its %u members. "
              "Relaxing to t0 = %u drops the requirement to %u, one\n"
              "player beyond this coalition: the n/4 bound is what keeps "
              "the *maximal* admissible\nrational coalition strictly below "
              "the quorum-intersection cliff at every n.\n",
              t0_quarter, kN - 2 * t0_quarter, kCoalition, t0_third,
              kN - 2 * t0_third);
  std::printf("\n[ablation] %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
