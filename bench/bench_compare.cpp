// Perf-trajectory regression gate: diffs freshly produced BENCH_*.json
// artifacts against the committed baselines under bench/baselines/ and
// exits by verdict, so a PR that tanks cells/sec, inflates p99, or breaks
// a safety bit is caught by CI rather than by archaeology. Tolerances are
// per metric (harness/compare.cpp): deterministic virtual-time metrics get
// tight bands, host wall-clock metrics get loose ones; only movement in
// the worse direction trips the gate.
//
//   bench_compare --baseline=bench/baselines/BENCH_matrix_smoke.baseline.json
//                 --current=BENCH_matrix_smoke.json
//   bench_compare --baseline-dir=bench/baselines --current-dir=.
//                                  # pairs every <stem>.baseline.json with
//                                  #   <current-dir>/<stem>.json
//   bench_compare ... --json=BENCH_compare.json   # machine-readable verdicts
//
// Exit codes: 0 = pass or warn, 1 = any fail, 2 = usage/setup error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/compare.hpp"
#include "harness/flags.hpp"
#include "harness/jsonio.hpp"

int main(int argc, char** argv) {
  ratcon::harness::Flags flags(argc, argv);

  const std::string baseline = flags.get_str("baseline", "");
  const std::string current = flags.get_str("current", "");
  const std::string baseline_dir = flags.get_str("baseline-dir", "");
  const std::string current_dir = flags.get_str("current-dir", "");

  std::vector<std::pair<std::string, std::string>> pairs;
  if (!baseline.empty() && !current.empty()) {
    pairs.emplace_back(baseline, current);
  } else if (!baseline_dir.empty() && !current_dir.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(baseline_dir, ec)) {
      const std::string name = entry.path().filename().string();
      constexpr std::string_view kSuffix = ".baseline.json";
      if (name.size() <= kSuffix.size() ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
        continue;
      }
      const std::string stem = name.substr(0, name.size() - kSuffix.size());
      pairs.emplace_back(entry.path().string(),
                         (fs::path(current_dir) / (stem + ".json")).string());
    }
    if (ec) {
      std::fprintf(stderr, "cannot list --baseline-dir=%s: %s\n",
                   baseline_dir.c_str(), ec.message().c_str());
      return 2;
    }
    if (pairs.empty()) {
      std::fprintf(stderr, "no *.baseline.json files under %s\n",
                   baseline_dir.c_str());
      return 2;
    }
    // directory_iterator order is unspecified; keep the output stable.
    std::sort(pairs.begin(), pairs.end());
  } else {
    std::fprintf(stderr,
                 "usage: bench_compare --baseline=<file> --current=<file>\n"
                 "       bench_compare --baseline-dir=<dir> "
                 "--current-dir=<dir>\n"
                 "       [--json=<out.json>]\n");
    return 2;
  }

  std::vector<ratcon::harness::CompareReport> reports;
  reports.reserve(pairs.size());
  int worst = 0;
  for (const auto& [base_path, cur_path] : pairs) {
    reports.push_back(ratcon::harness::compare_files(base_path, cur_path));
    const ratcon::harness::CompareReport& report = reports.back();
    std::printf("%s\n", report.summary().c_str());
    worst = std::max(worst, report.verdict());
  }

  const std::string json_path = flags.get_str("json", "");
  if (!json_path.empty()) {
    ratcon::harness::JsonWriter json;
    json.begin_object();
    json.key("bench").value("compare");
    json.key("verdict").value(worst == 0   ? "pass"
                              : worst == 1 ? "warn"
                                           : "fail");
    json.key("reports").begin_array();
    for (const auto& report : reports) {
      ratcon::harness::write_compare_json(json, report);
    }
    json.end_array();
    json.end_object();
    if (ratcon::harness::write_text_file(json_path, json.str())) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("WARNING: could not write %s\n", json_path.c_str());
    }
  }

  std::printf("overall: %s (%zu artifact pair(s))\n",
              worst == 0   ? "pass"
              : worst == 1 ? "warn"
                           : "FAIL",
              pairs.size());
  return worst >= 2 ? 1 : 0;
}
