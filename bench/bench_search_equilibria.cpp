// Adaptive equilibrium search (src/search) end-to-end: the
// BestResponseDriver starts from only π₀ in the strategy space and, by
// iterated coalition best-response over pure, mixed and
// parametric-adversary strategies, *discovers* the paper's attacks or
// certifies their absence:
//
//  (1) `unanimous` (τ = n, Claim 1's fragile regime), θ=3 — the search
//      finds a strictly profitable abstention/censorship coalition
//      (Theorem 1's liveness attack as a search outcome);
//  (2) pRFT, θ=1 (Lemma 4's DSIC regime) — honest play survives coalition
//      search up to k = ⌈n/4⌉: every pure, mixed and timed-fork deviation
//      in the pool is certified unprofitable;
//  (3) pRFT, θ=3 — beyond its design bound t0 = ⌈n/4⌉−1 the search
//      rediscovers the unpenalizable abstention coalition (the
//      impossibility side of Theorem 1: pRFT claims nothing here).
//
// Every search logs its evaluation budget in the printed summary, and the
// machine-readable outcome goes to BENCH_search.json so the perf/quality
// trajectory is tracked across PRs.
//
//   bench_search_equilibria                  # full: 3 seeds per cell
//   bench_search_equilibria --smoke          # 1 seed (CI)
//   bench_search_equilibria --workers=1 --verify-determinism
//   bench_search_equilibria --json=out.json  # artifact path

#include <cstdio>
#include <string>

#include "harness/flags.hpp"
#include "harness/jsonio.hpp"
#include "search/driver.hpp"

using namespace ratcon;
using harness::JsonWriter;
using search::SearchResult;
using search::SearchSpec;

namespace {

SearchSpec base_spec(bool smoke) {
  SearchSpec spec;
  spec.n = 8;
  spec.nets = {harness::NetKind::kSynchronous};
  spec.seeds = smoke ? std::vector<std::uint64_t>{1}
                     : std::vector<std::uint64_t>{1, 2, 3};
  spec.payoff.watched_tx = 1;
  spec.base.censored_txs = {1};
  spec.epsilon = 0.05;
  spec.horizon = sec(30);
  return spec;
}

void emit_result(JsonWriter& json, const char* name,
                 const SearchResult& r) {
  json.begin_object();
  json.key("name").value(name);
  json.key("protocol").value(to_string(r.protocol));
  json.key("n").value(static_cast<std::uint64_t>(r.n));
  json.key("theta").value(static_cast<std::int64_t>(r.theta));
  json.key("certified").value(r.equilibrium_certified);
  json.key("budget_exhausted").value(r.budget_exhausted);
  json.key("evaluations").value(static_cast<std::uint64_t>(r.evaluations));
  json.key("max_evaluations")
      .value(static_cast<std::uint64_t>(r.budget.max_evaluations));
  json.key("iterations").value(static_cast<std::uint64_t>(r.iterations));
  json.key("coalitions").value(
      static_cast<std::uint64_t>(r.coalitions_examined));
  json.key("unreduced_coalitions").value(r.unreduced_coalitions);
  json.key("candidates").value(
      static_cast<std::uint64_t>(r.candidate_count));
  json.key("wall_ms").value(r.wall_ms);
  json.key("profile");
  harness::write_profile_json(json, r.profile);
  json.key("space").begin_array();
  for (int vi = 0; vi < r.space.size(); ++vi) {
    json.begin_object();
    json.key("label").value(r.space.at(vi).label());
    json.key("coalition_utility").value(r.game.num_strategies(0) > vi
                                            ? r.game.payoff({vi}, 0)
                                            : 0.0);
    json.end_object();
  }
  json.end_array();
  json.key("discovered").begin_array();
  for (const search::DiscoveredDeviation& d : r.discovered) {
    json.begin_object();
    json.key("iteration").value(static_cast<std::uint64_t>(d.iteration));
    json.key("coalition").begin_array();
    for (const NodeId id : d.coalition) {
      json.value(static_cast<std::uint64_t>(id));
    }
    json.end_array();
    json.key("label").value(d.label);
    json.key("gain").value(d.gain);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

bool results_identical(const SearchResult& a, const SearchResult& b) {
  if (a.discovered.size() != b.discovered.size()) return false;
  for (std::size_t i = 0; i < a.discovered.size(); ++i) {
    if (a.discovered[i].coalition != b.discovered[i].coalition ||
        a.discovered[i].label != b.discovered[i].label ||
        a.discovered[i].gain != b.discovered[i].gain) {
      return false;
    }
  }
  if (a.final_profile != b.final_profile ||
      a.evaluations != b.evaluations ||
      a.equilibrium_certified != b.equilibrium_certified ||
      a.space.size() != b.space.size() ||
      a.game.num_strategies(0) != b.game.num_strategies(0)) {
    return false;
  }
  // The game may hold fewer rows than the space when budget exhaustion
  // skipped the final game-building pass.
  for (int vi = 0; vi < a.game.num_strategies(0); ++vi) {
    if (a.game.payoff({vi}, 0) != b.game.payoff({vi}, 0)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Flags flags(argc, argv);
  const bool smoke = flags.has("smoke");
  const bool verify_determinism = flags.has("verify-determinism");
  const std::string json_path =
      flags.get_str("json", "BENCH_search.json");
  const auto workers =
      static_cast<std::uint32_t>(flags.get_int("workers", 0));

  std::printf("==========================================================\n");
  std::printf("Adaptive equilibrium search: coalition best-response over\n");
  std::printf("mixed strategies and parameterized adversaries\n");
  std::printf("==========================================================\n\n");

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("search_equilibria");
  json.key("smoke").value(smoke);
  json.key("searches").begin_array();

  bool ok = true;

  // (1) The discovery half of the acceptance gate.
  SearchSpec unanimous = base_spec(smoke);
  unanimous.protocol = harness::Protocol::kUnanimous;
  unanimous.theta = 3;
  unanimous.workers = workers;
  const SearchResult r1 = search::search(unanimous);
  std::printf("%s\n", r1.summary().c_str());
  emit_result(json, "unanimous-theta3-discovery", r1);
  const bool discovered_attack =
      !r1.discovered.empty() && !r1.budget_exhausted;
  if (!discovered_attack) {
    std::printf("  FAIL: expected a profitable coalition deviation against "
                "tau = n\n");
    ok = false;
  }
  if (verify_determinism) {
    SearchSpec serial = unanimous;
    serial.workers = 1;
    if (!results_identical(r1, search::search(serial))) {
      std::printf("  FAIL: parallel search != serial search\n");
      ok = false;
    } else {
      std::printf("  determinism: serial == parallel verified\n");
    }
  }
  std::printf("\n");

  // (2) The certificate half: Lemma 4's regime survives the same search.
  SearchSpec prft_dsic = base_spec(smoke);
  prft_dsic.protocol = harness::Protocol::kPrft;
  prft_dsic.theta = 1;
  prft_dsic.horizon = sec(60);
  prft_dsic.workers = workers;
  const SearchResult r2 = search::search(prft_dsic);
  std::printf("%s\n", r2.summary().c_str());
  emit_result(json, "prft-theta1-certificate", r2);
  if (!r2.equilibrium_certified || !r2.discovered.empty()) {
    std::printf("  FAIL: expected honest play certified as an "
                "eps-best-response under pRFT\n");
    ok = false;
  }
  std::printf("\n");

  // (3) Theorem 1's impossibility side, found rather than scripted.
  SearchSpec prft_liveness = base_spec(smoke);
  prft_liveness.protocol = harness::Protocol::kPrft;
  prft_liveness.theta = 3;
  prft_liveness.workers = workers;
  const SearchResult r3 = search::search(prft_liveness);
  std::printf("%s\n", r3.summary().c_str());
  emit_result(json, "prft-theta3-impossibility", r3);
  if (r3.discovered.empty()) {
    std::printf("  FAIL: expected the search to rediscover the theta=3 "
                "abstention attack beyond t0\n");
    ok = false;
  }
  std::printf("\n");

  json.end_array();
  json.key("ok").value(ok);
  json.end_object();
  if (harness::write_text_file(json_path, json.str())) {
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", json_path.c_str());
  }

  std::printf("\n[search] %s: the driver %s the liveness attack against "
              "tau = n from pi_0 alone,\n         certified honesty for "
              "pRFT at theta <= 1 under coalition search to k = ceil(n/4),"
              "\n         and rediscovered Theorem 1 beyond pRFT's design "
              "bound.\n",
              ok ? "OK" : "MISMATCH", ok ? "discovered" : "did not discover");
  return ok ? 0 : 1;
}
