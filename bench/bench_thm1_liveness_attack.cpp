// Reproduces Theorem 1 (§4.4): under threat model ⟨(P,T,K), θ=3, t0⟩ no
// protocol is (t,k)-robust for ⌈n/3⌉ <= k+t <= ⌈n/2⌉−1.
//
// The coalition plays π_abs — full silence, indistinguishable from crash
// faults — against pRFT (n = 9, t0 = 2, quorum 7). The bench sweeps the
// coalition size across the theorem's range, measures the system state,
// checks that the penalty mechanism never fires (D(π_abs, σ) = 0), and
// evaluates the discounted utilities that make π_abs strictly preferred
// for θ=3 players: U(π_abs) = α/(1−δ) > 0 = U(π_0).

#include <cstdio>
#include <memory>

#include "adversary/behaviors.hpp"
#include "game/utility.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

struct Result {
  game::SystemState state;
  std::uint64_t blocks;
  std::size_t slashed;
};

Result run(std::uint32_t coalition_size, std::uint64_t seed) {
  harness::ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  for (NodeId id = 0; id < coalition_size; ++id) {
    spec.adversary.behaviors[id] =
        std::make_shared<adversary::AbstainBehavior>();
  }
  harness::Simulation sim(spec);
  sim.start();
  sim.run_until(sec(90));
  return {sim.classify(0), sim.max_height(),
          sim.deposits().slashed_players().size()};
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Theorem 1 — theta=3 rational players kill liveness\n");
  std::printf("==========================================================\n\n");
  std::printf("pRFT, n = 9, t0 = 2, quorum tau = 7. Coalition plays pi_abs.\n");
  std::printf("Theorem range: ceil(n/3) = 3 <= k+t <= ceil(n/2)-1 = 4.\n\n");

  const game::UtilityParams params{1.0, 10.0, 0.9};
  harness::Table table({"k+t", "system state", "blocks final", "slashed",
                        "U(pi_abs, theta=3)", "U(pi_0, theta=3)",
                        "abstain preferred?"});
  bool ok = true;
  for (std::uint32_t size : {0u, 2u, 3u, 4u}) {
    const Result r = run(size, 300 + size);
    // Stationary discounted utility from the realized state (Eq. 1).
    const double u_abs = game::stationary_discounted(
        game::payoff_f(r.state, 3, params.alpha), params.delta);
    const double u_honest = 0.0;  // honest run reaches sigma_0 every round
    const bool in_theorem_range = size >= 3 && size <= 4;
    if (in_theorem_range) {
      ok = ok && r.state == game::SystemState::kNoProgress && r.slashed == 0 &&
           u_abs > u_honest;
    } else {
      ok = ok && r.state == game::SystemState::kHonest;
    }
    table.add_row({std::to_string(size), game::to_string(r.state),
                   std::to_string(r.blocks), std::to_string(r.slashed),
                   harness::fmt(u_abs, 2), harness::fmt(u_honest, 2),
                   u_abs > u_honest ? "yes -> attack" : "no"});
  }
  table.print();

  std::printf("\nKey mechanism: pi_abs is indistinguishable from a crash "
              "fault, so no accountable\nprotocol can penalize it "
              "(slashed = 0 everywhere) — the impossibility is inherent.\n");
  std::printf("\n[thm1] %s: k+t in [ceil(n/3), ceil(n/2)-1] stalls the "
              "system with impunity;\n       k+t <= t0 cannot stall it.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
