// CLI driver for the workload engine: sweeps (protocol × n × net) cells
// under an open-loop (default), closed-loop, or fixed-interval transaction
// load and reports per-cell throughput (tx/sec of virtual time) and
// submit→finalize latency percentiles. This is the production-scale
// counterpart of bench_matrix_sweep — cells run until the engine drains
// (every generated transaction finalized on every live honest replica)
// rather than to a block target, e.g.:
//
//   bench_workload                                # default open-loop sweep,
//                                                 #   incl. the n=128 cell
//   bench_workload --rate=5000 --txs=20000
//   bench_workload --workload=closed --clients=64 --think-us=2000
//   bench_workload --zipf=1.1 --senders=1000      # skewed sender population
//   bench_workload --max-block-txs=32 --mempool-cap=4096
//   bench_workload --smoke                        # one small cell per net —
//                                                 #   the CI probe
//   bench_workload --verify-determinism           # serial vs parallel sweep,
//                                                 #   histograms must be ==
//   bench_workload --json=path.json               # artifact (default
//                                                 #   BENCH_workload.json)
//
// The determinism contract: each cell is an independent seeded simulation,
// all latency/throughput counters are integers, and histogram merge is
// element-wise addition — so a serial sweep and a parallel sweep produce
// byte-identical workload stats. --verify-determinism checks exactly that
// with operator== per cell and exits non-zero on any mismatch.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "harness/compare.hpp"
#include "harness/flags.hpp"
#include "harness/jsonio.hpp"
#include "harness/matrix.hpp"
#include "harness/metrics.hpp"
#include "harness/profiler.hpp"

namespace {

using ratcon::harness::MatrixSpec;
using ratcon::harness::NetKind;
using ratcon::harness::Protocol;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ratcon::harness::Flags flags(argc, argv);

  MatrixSpec spec;

  const std::string proto = flags.get_str("protocol", "prft");
  if (proto == "prft") {
    spec.protocols = {Protocol::kPrft};
  } else if (proto == "hotstuff") {
    spec.protocols = {Protocol::kHotStuff};
  } else if (proto == "raftlite") {
    spec.protocols = {Protocol::kRaftLite};
  } else if (proto == "quorum") {
    spec.protocols = {Protocol::kQuorum};
  } else if (proto == "all") {
    spec.protocols = {Protocol::kPrft, Protocol::kHotStuff,
                      Protocol::kRaftLite, Protocol::kQuorum};
  } else {
    std::fprintf(stderr,
                 "unknown --protocol=%s (prft|hotstuff|raftlite|quorum|all)\n",
                 proto.c_str());
    return 2;
  }

  // Default committee grid. pRFT's Reveal phase carries a full vote
  // certificate inside each of its >= n - t0 commit-evidence entries —
  // O(kappa n^2) bits per message and O(kappa n^4) per round (the size
  // column of the paper's Figure 3) — so the pRFT default stops at n=48;
  // the production-scale cell (n=128, >= 10k txs) runs on the
  // linear-message baselines, e.g.
  //   bench_workload --protocol=hotstuff --sizes=128 --txs=10000
  spec.committee_sizes = {16, 32, 48};
  if (proto == "hotstuff" || proto == "raftlite") {
    spec.committee_sizes = {16, 64, 128};
  }
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1};

  if (flags.has("sizes")) {
    spec.committee_sizes.clear();
    for (const std::string& s : split_csv(flags.get_str("sizes", ""))) {
      unsigned long parsed = 0;
      try {
        parsed = std::stoul(s);
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed == 0 || parsed > 4096 || s.find('-') != std::string::npos) {
        std::fprintf(stderr, "bad committee size '%s' in --sizes\n",
                     s.c_str());
        return 2;
      }
      spec.committee_sizes.push_back(static_cast<std::uint32_t>(parsed));
    }
  }
  if (flags.has("nets")) {
    spec.nets.clear();
    for (const std::string& s : split_csv(flags.get_str("nets", ""))) {
      if (s == "synchronous") {
        spec.nets.push_back(NetKind::kSynchronous);
      } else if (s == "partial-synchrony") {
        spec.nets.push_back(NetKind::kPartialSynchrony);
      } else if (s == "asynchronous") {
        spec.nets.push_back(NetKind::kAsynchronous);
      } else {
        std::fprintf(stderr, "unknown net model '%s'\n", s.c_str());
        return 2;
      }
    }
  }
  if (flags.has("seeds")) {
    const std::int64_t seed_count = flags.get_int("seeds", 1);
    spec.seeds.clear();
    for (std::int64_t s = 1; s <= seed_count; ++s) {
      spec.seeds.push_back(static_cast<std::uint64_t>(s));
    }
  }

  // Workload surface (shared spelling with bench_matrix_sweep): the bench
  // defaults to an open-loop 2000 tx/s load of 10k transactions.
  ratcon::harness::WorkloadFlags wl_defaults;
  wl_defaults.spec = ratcon::workload::WorkloadSpec::open_loop(
      /*rate_tx_per_sec=*/2000.0, /*txs=*/10000);
  const ratcon::harness::WorkloadFlags wl =
      ratcon::harness::parse_workload_flags(flags, wl_defaults);
  spec.workload_spec = wl.spec;
  spec.max_block_txs = wl.max_block_txs;
  spec.max_block_bytes = wl.max_block_bytes;
  spec.mempool_cap = wl.mempool.max_pending;

  // Drain-gated exit: cells stop when every generated transaction has
  // finalized on every live honest replica, not at a block target.
  spec.target_blocks = 0;
  spec.horizon = ratcon::sec(
      static_cast<std::int64_t>(flags.get_int("horizon-sec", 600)));
  spec.cell_budget_ms = flags.get_double("budget-ms", 0);
  spec.workers = static_cast<std::uint32_t>(flags.get_int("workers", 0));
  spec.sync_enabled = !flags.has("no-sync");

  // --smoke: the quick per-PR probe — one small committee per network
  // model under a scaled-down load. Explicit flags still win.
  if (flags.has("smoke")) {
    if (!flags.has("sizes")) spec.committee_sizes = {7};
    if (!flags.has("nets")) {
      spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony,
                   NetKind::kAsynchronous};
    }
    if (!flags.has("txs")) spec.workload_spec->txs = 500;
  }

  // Observability surface (shared spelling with bench_matrix_sweep, see
  // harness/flags.hpp): profiler on, flight recorder off, metrics
  // timelines on at level 1.
  ratcon::harness::ObservabilityFlags obs_defaults;
  obs_defaults.metrics_level = 1;
  const ratcon::harness::ObservabilityFlags obs =
      ratcon::harness::parse_observability_flags(flags, obs_defaults);
  ratcon::harness::Profiler::SetDefaultLevel(obs.prof_level);
  ratcon::harness::TraceSink::SetDefaultLevel(obs.trace_level);
  ratcon::harness::MetricsRegistry::SetDefaultLevel(obs.metrics_level);
  spec.trace_level = obs.trace_level;
  spec.metrics_level = obs.metrics_level;
  spec.forensics_dir = obs.forensics_dir;

  if (spec.committee_sizes.empty() || spec.nets.empty() ||
      spec.seeds.empty() || spec.workload_spec->empty()) {
    std::fprintf(stderr,
                 "empty sweep: need >=1 size, net, seed and --txs > 0\n");
    return 2;
  }

  const auto report = ratcon::harness::run_matrix(spec);
  std::printf("%s\n", report.summary().c_str());

  // --verify-determinism: rerun the identical sweep serially and require
  // byte-identical per-cell workload stats (histogram operator==).
  bool determinism_ok = true;
  if (flags.has("verify-determinism")) {
    MatrixSpec serial = spec;
    serial.workers = 1;
    const auto serial_report = ratcon::harness::run_matrix(serial);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
      if (report.cells[i].workload != serial_report.cells[i].workload) {
        ++mismatches;
        std::printf("DETERMINISM MISMATCH: %s\n",
                    report.cells[i].label().c_str());
      }
    }
    determinism_ok = mismatches == 0;
    std::printf("determinism: %zu cells, %zu mismatch(es) — %s\n",
                report.cells.size(), mismatches,
                determinism_ok ? "serial == parallel" : "FAILED");
  }

  // Machine-readable artifact: per-cell throughput + latency percentiles.
  {
    using ratcon::harness::JsonWriter;
    JsonWriter json;
    json.begin_object();
    json.key("bench").value("workload");
    json.key("cells").value(static_cast<std::uint64_t>(report.cell_count()));
    json.key("all_safe").value(report.all_safe());
    json.key("config").begin_object();
    {
      const auto& ws = *spec.workload_spec;
      json.key("mode").value(
          ws.mode == ratcon::workload::Arrival::kOpenLoop     ? "open"
          : ws.mode == ratcon::workload::Arrival::kClosedLoop ? "closed"
                                                              : "fixed");
      json.key("txs").value(ws.txs);
      json.key("rate_tx_per_sec").value(ws.rate);
      json.key("clients").value(static_cast<std::uint64_t>(ws.clients));
      json.key("zipf").value(ws.zipf);
      json.key("senders").value(ws.senders);
      json.key("payload_bytes").value(
          static_cast<std::uint64_t>(ws.payload_bytes));
      json.key("max_block_txs").value(
          static_cast<std::uint64_t>(spec.max_block_txs));
      json.key("max_block_bytes").value(
          static_cast<std::uint64_t>(spec.max_block_bytes));
      json.key("mempool_cap").value(
          static_cast<std::uint64_t>(spec.mempool_cap));
    }
    json.end_object();
    if (flags.has("verify-determinism")) {
      json.key("determinism_ok").value(determinism_ok);
    }
    json.key("results").begin_array();
    for (const auto& cell : report.cells) {
      const auto& w = cell.workload;
      json.begin_object();
      json.key("label").value(cell.label());
      json.key("safe").value(cell.safe());
      json.key("submitted").value(w.submitted);
      json.key("finalized").value(w.finalized);
      json.key("evicted").value(w.evicted);
      json.key("rejected").value(w.rejected);
      json.key("distinct_senders").value(w.distinct_senders);
      json.key("top_sender_txs").value(w.top_sender_txs);
      json.key("tx_per_sec").value(w.tx_per_sec());
      json.key("p50_us").value(static_cast<std::int64_t>(w.latency.p50()));
      json.key("p99_us").value(static_cast<std::int64_t>(w.latency.p99()));
      json.key("max_us").value(static_cast<std::int64_t>(w.latency.max()));
      json.key("mean_us").value(w.latency.mean());
      json.key("messages").value(cell.messages);
      json.key("bytes").value(cell.bytes);
      json.key("wall_ms").value(cell.wall_ms);
      if (!cell.metrics.empty()) {
        json.key("metrics");
        ratcon::harness::write_metrics_json(json, cell.metrics);
      }
      json.end_object();
    }
    json.end_array();
    const auto total = report.aggregate_workload();
    json.key("total").begin_object();
    json.key("submitted").value(total.submitted);
    json.key("finalized").value(total.finalized);
    json.key("evicted").value(total.evicted);
    json.key("rejected").value(total.rejected);
    json.key("tx_per_sec").value(total.tx_per_sec());
    json.key("p50_us").value(static_cast<std::int64_t>(total.latency.p50()));
    json.key("p99_us").value(static_cast<std::int64_t>(total.latency.p99()));
    json.end_object();
    json.key("total_wall_ms").value(report.total_wall_ms());
    json.key("rounds").begin_object();
    for (const auto& [rd_proto, hist] : report.round_durations_by_protocol()) {
      json.key(ratcon::harness::to_string(rd_proto)).begin_object();
      json.key("p50_us").value(static_cast<std::int64_t>(hist.p50()));
      json.key("p99_us").value(static_cast<std::int64_t>(hist.p99()));
      json.key("count").value(hist.total());
      json.end_object();
    }
    json.end_object();
    {
      const auto metrics_total = report.aggregate_metrics();
      if (!metrics_total.empty()) {
        json.key("metrics");
        ratcon::harness::write_metrics_json(json, metrics_total);
      }
    }
    json.key("profile");
    ratcon::harness::write_profile_json(json, report.aggregate_profile());
    json.end_object();
    const std::string json_path =
        flags.get_str("json", "BENCH_workload.json");
    if (ratcon::harness::write_text_file(json_path, json.str())) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("WARNING: could not write %s\n", json_path.c_str());
    }
    // --compare: diff this artifact against a committed baseline; a fail
    // verdict fails the bench (warns do not).
    if (!obs.compare_baseline.empty()) {
      const auto cmp =
          ratcon::harness::compare_files(obs.compare_baseline, json_path);
      std::printf("%s\n", cmp.summary().c_str());
      if (cmp.verdict() >= 2) return 1;
    }
  }

  if (!determinism_ok) return 1;

  const auto bad = report.unsafe_cells();
  if (!bad.empty()) {
    std::printf("\nUNSAFE CELLS (%zu):\n", bad.size());
    for (const auto* cell : bad) {
      std::printf("  %s\n", cell->label().c_str());
    }
    return 1;
  }

  // A cell that hit the horizon without draining shows up as incomplete:
  // fewer finalized than generated transactions.
  std::size_t undrained = 0;
  for (const auto& cell : report.cells) {
    if (cell.workload.finalized < spec.workload_spec->txs) ++undrained;
  }
  if (undrained > 0) {
    std::printf("\n%zu cell(s) hit the horizon before draining\n", undrained);
    return 1;
  }

  const auto slow = report.over_budget_cells();
  if (!slow.empty()) {
    std::printf("\n%zu cell(s) over the %.1f ms budget\n", slow.size(),
                spec.cell_budget_ms);
    return 1;
  }
  const auto total = report.aggregate_workload();
  std::printf("\nall %zu cells drained: %llu txs finalized, %s\n",
              report.cell_count(),
              static_cast<unsigned long long>(total.finalized),
              total.latency.summary().c_str());
  return 0;
}
