// Reproduces Figure 1 / Figure 2a: the normal-case execution of pRFT.
// Runs one round of a 5-replica committee (leader + 4 replicas, matching
// the paper's diagram) on a synchronous network with the flight recorder
// at level 3 and prints the actual message schedule — Propose → Vote →
// Commit → Reveal → Final — phase by phase, from the recorded TraceEvents
// rather than an ad-hoc wire callback. The full recording is also written
// as Chrome-tracing JSON (BENCH_fig1_trace.json — load in chrome://tracing
// or https://ui.perfetto.dev to see the schedule as flow arrows between
// replica tracks).

#include <cstdio>
#include <map>
#include <vector>

#include "core/messages.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "harness/trace.hpp"

using namespace ratcon;

int main() {
  std::printf("==========================================================\n");
  std::printf("Figure 1 / 2a — normal execution of pRFT (one round, n=5)\n");
  std::printf("==========================================================\n\n");

  harness::ScenarioSpec spec;
  spec.committee.n = 5;
  spec.seed = 2024;
  spec.budget.target_blocks = 1;
  spec.workload.txs = 4;
  spec.workload.start = usec(1);
  spec.workload.interval = usec(1);
  spec.trace_level = 3;  // full lineage: sends + receives + deliveries
  harness::Simulation sim(spec);

  sim.start();
  sim.run_until(sec(10));

  // The recorder holds every send with its phase (msg_type) and virtual
  // timestamp; Figure 2a draws pRFT's schedule, so substrate traffic (the
  // catch-up layer's announces, ProtoId::kSync) is filtered out.
  std::vector<harness::TraceEvent> sends;
  for (const harness::TraceEvent& ev : harness::TraceSink::Get().merged()) {
    if (ev.kind == harness::TraceKind::kSend &&
        ev.proto == static_cast<std::uint8_t>(consensus::ProtoId::kPrft)) {
      sends.push_back(ev);
    }
  }

  // Group sends into phases by message type.
  std::map<std::uint8_t, std::size_t> per_type;
  std::map<std::uint8_t, std::pair<SimTime, SimTime>> windows;
  for (const harness::TraceEvent& e : sends) {
    ++per_type[e.msg_type];
    auto it = windows.find(e.msg_type);
    if (it == windows.end()) {
      windows[e.msg_type] = {e.at, e.at};
    } else {
      it->second.first = std::min(it->second.first, e.at);
      it->second.second = std::max(it->second.second, e.at);
    }
  }

  std::printf("Round 1, leader = P%u (l = r mod n). Message schedule:\n\n",
              sim.config().leader(1));
  harness::Table table({"Phase", "Message", "Sends", "Expected",
                        "First send", "Last send"});
  struct Row {
    prft::MsgType type;
    const char* phase;
    const char* expected;
  };
  const std::uint32_t n = spec.committee.n;
  const Row rows[] = {
      {prft::MsgType::kPropose, "Propose", "n-1 (leader to replicas)"},
      {prft::MsgType::kVote, "Vote", "n(n-1) (all-to-all)"},
      {prft::MsgType::kCommit, "Commit", "n(n-1) (all-to-all)"},
      {prft::MsgType::kReveal, "Reveal", "n(n-1) (all-to-all)"},
      {prft::MsgType::kFinal, "Final", "n(n-1) (all-to-all)"},
  };
  bool ok = true;
  for (const Row& row : rows) {
    const auto type = static_cast<std::uint8_t>(row.type);
    const std::size_t count = per_type[type];
    const auto [first, last] = windows.count(type)
                                   ? windows[type]
                                   : std::pair<SimTime, SimTime>{0, 0};
    const std::size_t expected =
        row.type == prft::MsgType::kPropose ? n - 1 : n * (n - 1);
    if (count != expected) ok = false;
    table.add_row({row.phase, prft::to_string(row.type),
                   std::to_string(count), row.expected,
                   harness::fmt(static_cast<double>(first) / 1000.0, 2) + " ms",
                   harness::fmt(static_cast<double>(last) / 1000.0, 2) + " ms"});
  }
  table.print();

  const char* trace_path = "BENCH_fig1_trace.json";
  if (sim.dump_trace(trace_path)) {
    std::printf("\nwrote %s (chrome://tracing) and %s.txt\n", trace_path,
                trace_path);
  } else {
    std::printf("\nWARNING: could not write %s\n", trace_path);
    ok = false;
  }

  std::printf("\nOutcome: every replica finalized block 1: %s\n",
              sim.min_height() >= 1 ? "yes" : "NO");
  std::printf("Agreement: %s;  honest slashed: %s;  view changes: none "
              "needed on the synchronous path\n",
              sim.agreement_holds() ? "holds" : "VIOLATED",
              sim.honest_player_slashed() ? "YES (bug)" : "no");
  std::printf("Monitors: %s\n",
              sim.monitors().violated() ? "VIOLATION latched (bug)"
                                        : "all invariants held");

  ok = ok && sim.min_height() >= 1 && sim.agreement_holds() &&
       !sim.monitors().violated();
  std::printf("\n[fig1] %s: 4 phases, each completing before the next "
              "starts, exactly as drawn in Figure 2a.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
