// Reproduces Figure 2b: the pRFT message catalog. For each of the 8
// message types the bench builds a representative instance at n = 7 and
// reports its wire size, the fields it carries (as in the paper's table),
// and how the size scales with committee size n — the raw material behind
// Figure 3's O(κ·n^k) size column.

#include <cstdio>

#include "consensus/envelope.hpp"
#include "core/messages.hpp"
#include "harness/fit.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using namespace ratcon::prft;

namespace {

struct Sample {
  crypto::KeyRegistry registry;
  std::vector<crypto::KeyPair> keys;
  std::uint32_t n;
  Round r = 3;
  ledger::Block block;
  crypto::Hash256 h;

  explicit Sample(std::uint32_t n_in) : n(n_in) {
    for (NodeId id = 0; id < n; ++id) keys.push_back(registry.generate(id, 7));
    block.parent = crypto::kZeroHash;
    block.round = r;
    block.proposer = 0;
    for (int i = 0; i < 8; ++i) {
      block.txs.push_back(ledger::make_transfer(static_cast<std::uint64_t>(i), 0));
    }
    h = block.hash();
  }

  consensus::PhaseSig psig(consensus::PhaseTag tag, NodeId who) const {
    return consensus::sign_phase(ProtoId::kPrft, tag, r, h, who,
                                 keys[who].sk);
  }

  consensus::Certificate cert(consensus::PhaseTag tag) const {
    consensus::Certificate c;
    c.phase = tag;
    c.round = r;
    c.value = h;
    const std::uint32_t quorum = n - ((n + 3) / 4 - 1);
    for (NodeId id = 0; id < quorum; ++id) c.sigs.push_back(psig(tag, id));
    return c;
  }

  std::size_t wire_size(MsgType type, const Bytes& body) const {
    return consensus::make_envelope(ProtoId::kPrft,
                                    static_cast<std::uint8_t>(type), r, 0,
                                    body, keys[0].sk)
        .encode()
        .size();
  }
};

std::size_t size_of(const Sample& s, MsgType type) {
  Writer w;
  switch (type) {
    case MsgType::kPropose: {
      ProposeBody b;
      b.block = s.block;
      b.pro_sig = s.psig(consensus::PhaseTag::kPropose, 0);
      b.encode(w);
      break;
    }
    case MsgType::kVote: {
      VoteBody b;
      b.h = s.h;
      b.leader_pro_sig = s.psig(consensus::PhaseTag::kPropose, 0);
      b.vote_sig = s.psig(consensus::PhaseTag::kVote, 1);
      b.encode(w);
      break;
    }
    case MsgType::kCommit: {
      CommitBody b;
      b.h = s.h;
      b.leader_pro_sig = s.psig(consensus::PhaseTag::kPropose, 0);
      b.vote_cert = s.cert(consensus::PhaseTag::kVote);
      b.commit_sig = s.psig(consensus::PhaseTag::kCommit, 1);
      b.encode(w);
      break;
    }
    case MsgType::kReveal: {
      RevealBody b;
      b.h_tc = s.h;
      b.h_l = s.h;
      const std::uint32_t quorum = s.n - ((s.n + 3) / 4 - 1);
      for (NodeId id = 0; id < quorum; ++id) {
        b.commits.push_back(CommitEvidence{
            s.psig(consensus::PhaseTag::kCommit, id),
            s.cert(consensus::PhaseTag::kVote)});
      }
      b.reveal_sig = s.psig(consensus::PhaseTag::kReveal, 1);
      b.encode(w);
      break;
    }
    case MsgType::kExpose: {
      ExposeBody b;
      const std::uint32_t guilty = (s.n + 3) / 4;  // t0 + 1
      for (NodeId id = 0; id < guilty; ++id) {
        consensus::ConflictPair cp;
        cp.phase = consensus::PhaseTag::kCommit;
        cp.round = s.r;
        cp.value_a = s.h;
        cp.value_b = crypto::sha256(std::string_view("other"));
        cp.sig_a = s.psig(consensus::PhaseTag::kCommit, id);
        cp.sig_b = consensus::sign_phase(ProtoId::kPrft,
                                         consensus::PhaseTag::kCommit, s.r,
                                         cp.value_b, id, s.keys[id].sk);
        b.proofs.push_back(cp);
      }
      b.encode(w);
      break;
    }
    case MsgType::kFinal: {
      FinalBody b;
      b.h = s.h;
      b.leader_pro_sig = s.psig(consensus::PhaseTag::kPropose, 0);
      b.final_sig = s.psig(consensus::PhaseTag::kFinal, 1);
      b.encode(w);
      break;
    }
    case MsgType::kViewChange: {
      ViewChangeBody b;
      b.stalled_phase = consensus::PhaseTag::kVote;
      b.vc_sig = consensus::sign_phase(ProtoId::kPrft,
                                       consensus::PhaseTag::kViewChange, s.r,
                                       vc_value(s.r), 1, s.keys[1].sk);
      b.encode(w);
      break;
    }
    case MsgType::kCommitView: {
      CommitViewBody b;
      consensus::Certificate c;
      c.phase = consensus::PhaseTag::kViewChange;
      c.round = s.r;
      c.value = vc_value(s.r);
      const std::uint32_t quorum = s.n - ((s.n + 3) / 4 - 1);
      for (NodeId id = 0; id < quorum; ++id) {
        c.sigs.push_back(consensus::sign_phase(
            ProtoId::kPrft, consensus::PhaseTag::kViewChange, s.r,
            vc_value(s.r), id, s.keys[id].sk));
      }
      b.vc_cert = c;
      b.cv_sig = consensus::sign_phase(ProtoId::kPrft,
                                       consensus::PhaseTag::kCommitView, s.r,
                                       vc_value(s.r), 1, s.keys[1].sk);
      b.encode(w);
      break;
    }
    default: break;
  }
  return s.wire_size(type, w.take());
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Figure 2b — pRFT message types and wire sizes\n");
  std::printf("==========================================================\n\n");
  std::printf("kappa (signature size) = %zu bytes\n\n",
              crypto::kSignatureSize);

  struct Row {
    MsgType type;
    const char* fields;
    const char* scaling;
  };
  const Row rows[] = {
      {MsgType::kPropose, "<Propose, B_l, h_l, r>, s_pro", "O(block)"},
      {MsgType::kVote, "<Vote, h, s_pro, r>, s_vote", "O(kappa)"},
      {MsgType::kCommit, "<Commit, h*, s_pro, V_i, r>, s_com",
       "O(kappa n)"},
      {MsgType::kReveal, "<Reveal, h_tc, h_l, W_i, r>, s_rev",
       "O(kappa n^2)"},
      {MsgType::kExpose, "<Expose, D_i, r>, s_exp", "O(kappa t0)"},
      {MsgType::kFinal, "<Final, h_l, s_pro>, s_fin", "O(kappa)"},
      {MsgType::kViewChange, "<ViewChange, Phase, r>, s_vc", "O(kappa)"},
      {MsgType::kCommitView, "<CommitView, V_i, r>, s_cv", "O(kappa n)"},
  };

  harness::Table table({"Message", "Contents (paper Fig. 2b)", "n=7", "n=14",
                        "n=28", "Fitted n-exponent", "Expected"});
  Sample s7(7), s14(14), s28(28);
  for (const Row& row : rows) {
    const double b7 = static_cast<double>(size_of(s7, row.type));
    const double b14 = static_cast<double>(size_of(s14, row.type));
    const double b28 = static_cast<double>(size_of(s28, row.type));
    const auto fit = harness::fit_power_law({7, 14, 28}, {b7, b14, b28});
    table.add_row({prft::to_string(row.type), row.fields,
                   harness::fmt_bytes(static_cast<std::uint64_t>(b7)),
                   harness::fmt_bytes(static_cast<std::uint64_t>(b14)),
                   harness::fmt_bytes(static_cast<std::uint64_t>(b28)),
                   harness::fmt(fit.exponent, 2), row.scaling});
  }
  table.print();

  std::printf("\n[fig2] OK: the Reveal message's O(kappa n^2) payload is what"
              " drives the round's\n        total O(kappa n^4) bits in"
              " Figure 3 (n^2 reveal sends x kappa n^2 each).\n");
  return 0;
}
