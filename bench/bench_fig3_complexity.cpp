// Reproduces Figure 3 (§5.3.3): message complexity, message size and
// accountability across pBFT, HotStuff, Polygraph and pRFT.
//
// Every protocol runs its normal-case path on the shared simulator for a
// sweep of committee sizes; the cluster's traffic stats count real wire
// bytes. Power-law fits of messages-per-round and bytes-per-round against
// n give the measured exponents printed next to the paper's asymptotic
// claims. Note the paper's message-complexity column counts the
// view-change storm path (n² view-changes, each answered per phase); the
// normal-case exponents measured here are one degree lower for the
// all-to-all protocols (Θ(n²) messages), while the *size* hierarchy —
// HotStuff ≪ pBFT < Polygraph < pRFT — reproduces directly.

#include <cstdio>
#include <memory>

#include "baselines/quorum_node.hpp"
#include "harness/fit.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using baselines::QuorumNode;
using harness::Protocol;
using harness::ScenarioSpec;
using harness::Simulation;

namespace {

constexpr std::uint64_t kBlocks = 3;

struct Measurement {
  double msgs_per_round = 0;
  double bytes_per_round = 0;
};

ScenarioSpec base_scenario(Protocol proto, std::uint32_t n,
                           std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = proto;
  spec.committee.n = n;
  spec.committee.max_block_txs = 4;
  spec.seed = seed;
  spec.budget.target_blocks = kBlocks;
  spec.workload.txs = 4;
  spec.workload.interval = msec(1);
  return spec;
}

Measurement measure(Simulation& sim) {
  sim.start();
  sim.run_until(sec(120));
  // Figure 3 compares the consensus protocols' own complexity; exclude the
  // catch-up substrate's traffic (ProtoId::kSync announces are O(n²) per
  // height for every protocol and would flatten the hierarchy).
  const auto total = sim.net().stats().total();
  const auto sync = sim.net().stats().for_proto(
      static_cast<std::uint8_t>(consensus::ProtoId::kSync));
  return {static_cast<double>(total.count - sync.count) / kBlocks,
          static_cast<double>(total.bytes - sync.bytes) / kBlocks};
}

Measurement run_quorum(std::uint32_t n, bool accountable) {
  ScenarioSpec spec = base_scenario(Protocol::kQuorum, n, 1000 + n);
  if (accountable) {
    // Polygraph mode: same quorum machinery, certificates attached.
    spec.adversary.node_factory = [](NodeId id, const harness::NodeEnv& env) {
      return std::make_unique<QuorumNode>(
          harness::make_quorum_deps(id, env, /*accountable=*/true));
    };
  }
  Simulation sim(spec);
  return measure(sim);
}

Measurement run_hotstuff(std::uint32_t n) {
  Simulation sim(base_scenario(Protocol::kHotStuff, n, 2000 + n));
  return measure(sim);
}

Measurement run_prft(std::uint32_t n) {
  Simulation sim(base_scenario(Protocol::kPrft, n, 3000 + n));
  return measure(sim);
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Figure 3 — message complexity / size / accountability\n");
  std::printf("==========================================================\n\n");

  const std::vector<std::uint32_t> sizes = {6, 9, 12, 18, 24};
  std::vector<double> ns(sizes.begin(), sizes.end());

  struct ProtocolRow {
    const char* name;
    const char* paper_msgs;
    const char* paper_size;
    const char* accountable;
    std::vector<double> msgs;
    std::vector<double> bytes;
  };
  std::vector<ProtocolRow> rows = {
      {"pBFT", "O(n^3)", "O(k n^4)", "x", {}, {}},
      {"HotStuff", "O(n^2)", "O(k n^3)", "x", {}, {}},
      {"Polygraph", "O(n^3)", "O(k n^4)", "yes", {}, {}},
      {"pRFT", "O(n^3)", "O(k n^4)", "yes", {}, {}},
  };

  for (std::uint32_t n : sizes) {
    const Measurement pbft = run_quorum(n, false);
    const Measurement hs = run_hotstuff(n);
    const Measurement poly = run_quorum(n, true);
    const Measurement prft = run_prft(n);
    rows[0].msgs.push_back(pbft.msgs_per_round);
    rows[0].bytes.push_back(pbft.bytes_per_round);
    rows[1].msgs.push_back(hs.msgs_per_round);
    rows[1].bytes.push_back(hs.bytes_per_round);
    rows[2].msgs.push_back(poly.msgs_per_round);
    rows[2].bytes.push_back(poly.bytes_per_round);
    rows[3].msgs.push_back(prft.msgs_per_round);
    rows[3].bytes.push_back(prft.bytes_per_round);
  }

  std::printf("Measured traffic per agreed block (normal case):\n\n");
  harness::Table raw({"Protocol", "n=6 msgs", "n=24 msgs", "n=6 bytes",
                      "n=24 bytes"});
  for (const ProtocolRow& row : rows) {
    raw.add_row({row.name, harness::fmt(row.msgs.front(), 0),
                 harness::fmt(row.msgs.back(), 0),
                 harness::fmt_bytes(
                     static_cast<std::uint64_t>(row.bytes.front())),
                 harness::fmt_bytes(
                     static_cast<std::uint64_t>(row.bytes.back()))});
  }
  raw.print();

  std::printf("\nFigure 3 reproduction (paper claim vs fitted exponents; "
              "normal-case path):\n\n");
  harness::Table table({"Protocol", "paper msgs", "measured msgs ~ n^b",
                        "paper size", "measured bytes ~ n^b",
                        "Accountability"});
  std::vector<double> msg_exp, byte_exp;
  for (const ProtocolRow& row : rows) {
    const auto fm = harness::fit_power_law(ns, row.msgs);
    const auto fb = harness::fit_power_law(ns, row.bytes);
    msg_exp.push_back(fm.exponent);
    byte_exp.push_back(fb.exponent);
    table.add_row({row.name, row.paper_msgs,
                   "n^" + harness::fmt(fm.exponent, 2), row.paper_size,
                   "n^" + harness::fmt(fb.exponent, 2), row.accountable});
  }
  table.print();

  // Shape checks: HotStuff is ~linear in messages and at least one degree
  // below the all-to-all protocols; pRFT's bytes exponent is the largest
  // (the Reveal certificates) and Polygraph sits between pBFT and pRFT.
  const bool shape_ok =
      msg_exp[1] < msg_exp[0] - 0.6 &&          // HotStuff << pBFT (msgs)
      byte_exp[3] > byte_exp[2] - 0.1 &&        // pRFT >= Polygraph (bytes)
      byte_exp[2] > byte_exp[0] - 0.1 &&        // Polygraph >= pBFT (bytes)
      byte_exp[3] > byte_exp[1] + 0.8;          // pRFT >> HotStuff (bytes)

  std::printf("\nNotes:\n");
  std::printf("  * The paper's message-complexity column counts the "
              "view-change storm path; the\n    normal-case all-to-all "
              "exponent is ~2 (n^2 sends/round) and HotStuff's is ~1.\n");
  std::printf("  * The size hierarchy matches: pRFT/Polygraph carry "
              "certificates-of-certificates\n    (kappa*n^2-sized Reveals "
              "-> total kappa*n^4 per round), pBFT carries only\n    "
              "signatures, HotStuff only leader QCs.\n");
  std::printf("  * Accountability column is behavioural: Polygraph and "
              "pRFT convict >= t0+1 players\n    after equivocation (see "
              "baselines_test.cpp and adversary_test.cpp); pBFT and\n    "
              "HotStuff cannot.\n");
  std::printf("\n[fig3] %s: complexity shape and accountability hierarchy "
              "reproduce.\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
