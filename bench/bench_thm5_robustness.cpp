// Reproduces Theorem 5 (§6): pRFT is a strongly (t,k)-robust rational
// consensus protocol under ⟨(P,T,K), θ=1, ⌈n/4⌉−1⟩ with |K|+|T| < n/2, in
// synchronous and partially synchronous networks.
//
// Sweep: committee sizes n ∈ {8, 9, 12, 13}, the maximal admissible fork
// coalition k + t = ⌈n/2⌉ − 1 (with t ≤ t0 = ⌈n/4⌉ − 1 Byzantine members),
// both network models, adversarial pre-GST partitions aligned with the
// coalition's target sides, and several seeds. For every configuration the
// run must satisfy all four properties of Definition 1 + censorship
// resistance (Definition 3):
//   validity/agreement (no fork), c-strict ordering, eventual liveness
//   (every honest player reaches the target height), censorship resistance
//   (the watched tx lands), and accountability soundness (no honest player
//   is ever slashed).

#include <cstdio>
#include <memory>

#include "adversary/fork_agent.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

struct Config {
  std::uint32_t n;
  bool partial_sync;
  std::uint64_t seed;
};

struct Verdict {
  bool agreement, ordering, liveness, censorship_free, no_honest_slash;
  std::uint64_t blocks;
  std::size_t slashed;
  [[nodiscard]] bool all() const {
    return agreement && ordering && liveness && censorship_free &&
           no_honest_slash;
  }
};

constexpr std::uint64_t kWatched = 9001;

Verdict run(const Config& cfg) {
  const std::uint32_t coalition_size = (cfg.n + 1) / 2 - 1;  // ⌈n/2⌉ − 1
  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = cfg.n;
  for (NodeId id = 0; id < coalition_size; ++id) plan->coalition.insert(id);
  const std::uint32_t honest = cfg.n - coalition_size;
  std::vector<NodeId> side_a, side_b;
  for (NodeId id = coalition_size; id < coalition_size + (honest + 1) / 2;
       ++id) {
    plan->side_a.insert(id);
    side_a.push_back(id);
  }
  for (NodeId id = coalition_size + (honest + 1) / 2; id < cfg.n; ++id) {
    plan->side_b.insert(id);
    side_b.push_back(id);
  }

  harness::ScenarioSpec spec;
  spec.committee.n = cfg.n;
  spec.seed = cfg.seed;
  spec.budget.target_blocks = 4;
  spec.workload.txs = 8;
  spec.workload.interval = msec(1);
  if (cfg.partial_sync) {
    spec.net =
        harness::NetworkSpec::partial_synchrony(msec(500), msec(10), 0.85);
    // Adversarial pre-GST partition exactly along the coalition's sides.
    spec.faults.partition({side_a, side_b}, msec(1), msec(500));
  }
  spec.adversary.node_factory =
      [plan](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    if (plan->coalition.count(id)) {
      return std::make_unique<adversary::ForkAgentNode>(
          harness::make_prft_deps(id, env), plan);
    }
    return nullptr;
  };
  harness::Simulation sim(spec);
  sim.submit_tx(ledger::make_transfer(kWatched, plan->side_a.empty()
                                                    ? 0
                                                    : *plan->side_a.begin()),
                msec(1));
  sim.start();
  sim.run_until(sec(600));

  Verdict v{};
  v.agreement = sim.agreement_holds();
  v.ordering = sim.ordering_holds();
  v.liveness = sim.min_height() >= 4;
  v.no_honest_slash = !sim.honest_player_slashed();
  v.blocks = sim.min_height();
  v.slashed = sim.deposits().slashed_players().size();
  v.censorship_free = false;
  for (const ledger::Chain* c : sim.honest_chains()) {
    v.censorship_free = v.censorship_free || c->finalized_contains_tx(kWatched);
  }
  return v;
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Theorem 5 — pRFT is strongly (t,k)-robust\n");
  std::printf("==========================================================\n\n");
  std::printf("Worst admissible adversary per n: fork coalition of "
              "ceil(n/2)-1 players (theta = 1,\npi_ds via equivocation + "
              "targeted sides), adversarial pre-GST partition in the\n"
              "partially synchronous runs. Watched tx checks censorship "
              "resistance.\n\n");

  harness::Table table({"n", "k+t", "t0", "network", "seed", "blocks",
                        "colluders slashed", "agree", "order", "live",
                        "tx_h in", "honest safe", "verdict"});
  bool ok = true;
  for (std::uint32_t n : {8u, 9u, 12u, 13u}) {
    for (bool psync : {false, true}) {
      for (std::uint64_t seed : {1u, 2u}) {
        const Config cfg{n, psync, 8000 + n * 10 + seed + (psync ? 100 : 0)};
        const Verdict v = run(cfg);
        ok = ok && v.all();
        table.add_row({std::to_string(n),
                       std::to_string((n + 1) / 2 - 1),
                       std::to_string(consensus::prft_t0(n)),
                       psync ? "part-sync" : "sync", std::to_string(seed),
                       std::to_string(v.blocks), std::to_string(v.slashed),
                       v.agreement ? "yes" : "NO", v.ordering ? "yes" : "NO",
                       v.liveness ? "yes" : "NO",
                       v.censorship_free ? "yes" : "NO",
                       v.no_honest_slash ? "yes" : "NO",
                       v.all() ? "robust" : "VIOLATED"});
      }
    }
  }
  table.print();

  std::printf("\n[thm5] %s: across every configuration the maximal theta=1 "
              "coalition neither forks\n       nor censors nor stalls pRFT, "
              "and only colluders lose deposits — pRFT is\n       strongly "
              "(t,k)-robust for t < n/4, k + t < n/2.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
