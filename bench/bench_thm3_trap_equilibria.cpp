// Reproduces Theorem 3 (§4.4, Appendix D): baiting-based rational
// consensus (TRAP, Ranchal-Pedrosa & Gramoli 2022) admits a second Nash
// equilibrium — the whole coalition playing π_fork — whenever
// |K| > 2 + t0 − t, and that equilibrium Pareto-dominates the secure
// baiting equilibrium, making it focal (§4.3). Two reproductions:
//
//  (1) Game-level: build the k-player bait/fork game from the paper's
//      payoff model (reward R, fork gain G shared as G/k, deposit L,
//      baiting threshold m > t0 + k + t − n/2 from Appendix D), enumerate
//      the pure Nash equilibria and the Pareto frontier.
//  (2) Protocol-level: run the TRAP-style accountable quorum protocol with
//      m baiters and verify the fork outcome matches the game's threshold.

#include <cstdio>
#include <memory>

#include "baselines/quorum_node.hpp"
#include "game/normal_form.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using baselines::QuorumForkPlan;
using baselines::QuorumNode;
using game::NormalFormGame;
using game::Profile;
using harness::ScenarioSpec;
using harness::Simulation;

namespace {

// TRAP instance: n = 30, t0 = ⌈n/3⌉ − 1 = 9 (quorum τ = 21), t = 7
// Byzantine and k = 7 rational colluders (k + t = 14 < n/2 = 15 and
// |K| = 7 > 2 + t0 − t = 4, satisfying Theorem 3's strict condition).
//
// Baiting threshold, derived from the partition geometry the theorem's
// proof uses. A defecting baiter still runs the honest protocol — it votes
// for exactly one value — so the adversary steers half the baiters to each
// side. Both sides reach the quorum τ iff
//    |A| + |B| + 2(k + t − m) + m >= 2τ,
// i.e. the fork survives m baiters iff m <= (n−k−t) + 2(k+t) − 2τ = 2.
//
// NOTE (reproduction finding): Appendix D prints the threshold as
// m > t0 + k + t − n/2; substituting its own |B| = (n−t−k)/2 geometry
// gives a different constant, and neither form accounts for the steered
// baiter votes above. The geometry-derived form used here is the one the
// protocol simulation confirms below.
constexpr std::uint32_t kN = 30;
constexpr std::uint32_t kT0 = 9;      // ⌈30/3⌉ − 1
constexpr std::uint32_t kTByz = 7;    // Byzantine colluders
constexpr std::uint32_t kK = 7;       // rational colluders
constexpr double kR = 10.0;           // baiting reward
constexpr double kG = 100.0;          // collusion gain on disagreement
constexpr double kL = 20.0;           // deposit

/// Fork survives m defecting baiters iff both partition sides can still
/// reach the quorum, counting each steered baiter's single honest vote.
bool fork_succeeds(std::uint32_t m) {
  const std::uint32_t tau = kN - kT0;
  const std::uint32_t honest = kN - kK - kTByz;
  return honest + 2 * (kK + kTByz - m) + m >= 2 * tau;
}

/// Payoff of a rational colluder given own strategy and the number of
/// *other* baiters (strategy 0 = π_fork, 1 = π_bait).
double payoff(int own, std::uint32_t other_baiters) {
  const std::uint32_t m = other_baiters + (own == 1 ? 1 : 0);
  const std::uint32_t forkers = kK - m;
  if (fork_succeeds(m)) {
    // Disagreement: gain G split among the colluding rational players.
    return own == 0 ? kG / static_cast<double>(forkers == 0 ? 1 : forkers)
                    : 0.0;
  }
  // Fork averted: baiters share the reward in expectation; exposed forkers
  // lose their deposit.
  return own == 1 ? kR / static_cast<double>(m) : -kL;
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Theorem 3 — TRAP's insecure focal Nash equilibrium\n");
  std::printf("==========================================================\n\n");
  std::printf("TRAP instance: n = %u, t0 = %u (tau = %u), t = %u Byzantine, "
              "k = %u rational colluders,\nR = %.0f, G = %.0f, L = %.0f. "
              "|K| = %u > 2 + t0 - t = %u (Theorem 3's condition).\n"
              "Geometry-derived baiting threshold: fork survives m <= %u "
              "baiters.\n\n",
              kN, kT0, kN - kT0, kTByz, kK, kR, kG, kL, kK,
              2 + kT0 - kTByz,
              (kN - kK - kTByz) + 2 * (kK + kTByz) - 2 * (kN - kT0));

  // ---- (1) Game-level reproduction --------------------------------------
  NormalFormGame g(std::vector<int>(kK, 2));
  for (std::uint32_t i = 0; i < kK; ++i) {
    g.set_player_name(static_cast<int>(i), "K" + std::to_string(i));
    g.set_strategy_name(static_cast<int>(i), 0, "fork");
    g.set_strategy_name(static_cast<int>(i), 1, "bait");
  }
  for (const Profile& p : g.all_profiles()) {
    for (std::uint32_t i = 0; i < kK; ++i) {
      std::uint32_t others = 0;
      for (std::uint32_t j = 0; j < kK; ++j) {
        if (j != i && p[j] == 1) ++others;
      }
      g.set_payoff(p, static_cast<int>(i),
                   payoff(p[static_cast<std::size_t>(i)], others));
    }
  }

  const auto equilibria = g.pure_nash();
  std::printf("Pure Nash equilibria of the bait/fork game: %zu\n",
              equilibria.size());
  harness::Table eq_table({"Equilibrium", "per-player payoff", "secure?"});
  bool has_all_fork = false;
  const Profile all_fork(kK, 0);
  for (const Profile& eq : equilibria) {
    const bool is_all_fork = eq == all_fork;
    has_all_fork = has_all_fork || is_all_fork;
    std::uint32_t m = 0;
    for (int s : eq) m += s == 1 ? 1u : 0u;
    eq_table.add_row({g.describe(eq), harness::fmt(g.payoff(eq, 0), 1),
                      fork_succeeds(m) ? "NO - disagreement" : "yes"});
  }
  eq_table.print();

  const auto focal = g.pareto_frontier(equilibria);
  std::printf("\nPareto-undominated (focal) equilibria:\n");
  bool fork_is_focal = false;
  for (const Profile& eq : focal) {
    fork_is_focal = fork_is_focal || eq == all_fork;
    std::printf("  %s\n", g.describe(eq).c_str());
  }

  // ---- (2) Protocol-level cross-check ------------------------------------
  std::printf("\nProtocol-level cross-check (TRAP-style accountable quorum "
              "protocol):\n\n");
  harness::Table sim_table({"baiters m", "game predicts", "simulated state",
                            "match"});
  bool sims_match = true;
  for (std::uint32_t m : {0u, 1u, 2u, 3u, 7u}) {
    auto plan = std::make_shared<QuorumForkPlan>();
    plan->n = kN;
    for (NodeId id = 0; id < kTByz + kK; ++id) plan->coalition.insert(id);
    const std::uint32_t half = (kN - kK - kTByz) / 2;
    for (NodeId id = kTByz + kK; id < kTByz + kK + half; ++id) {
      plan->side_a.insert(id);
    }
    for (NodeId id = kTByz + kK + half; id < kN; ++id) {
      plan->side_b.insert(id);
    }
    // The last m rational members defect to baiting.
    for (NodeId id = kTByz + kK - m; id < kTByz + kK; ++id) {
      plan->baiters.insert(id);
    }

    ScenarioSpec spec;
    spec.protocol = harness::Protocol::kQuorum;
    spec.committee.n = kN;
    spec.committee.t0 = kT0;
    spec.seed = 500 + m;
    spec.budget.target_blocks = 2;
    spec.workload.txs = 4;
    spec.workload.interval = msec(1);
    spec.adversary.node_factory = [plan](NodeId id,
                                         const harness::NodeEnv& env) {
      QuorumNode::Deps deps =
          harness::make_quorum_deps(id, env, /*accountable=*/true);
      deps.proto = consensus::ProtoId::kTrap;
      deps.fork_plan = plan;
      return std::make_unique<QuorumNode>(std::move(deps));
    };
    // The partition from the theorem's proof: the two honest sides cannot
    // hear each other during the attack (the colluders bridge them).
    const std::vector<NodeId> side_a_vec(plan->side_a.begin(),
                                         plan->side_a.end());
    const std::vector<NodeId> side_b_vec(plan->side_b.begin(),
                                         plan->side_b.end());
    spec.faults.partition({side_a_vec, side_b_vec}, msec(1), msec(400));
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(120));

    const bool predicted_fork = fork_succeeds(m);
    const bool simulated_fork = !sim.agreement_holds();
    sims_match = sims_match && predicted_fork == simulated_fork;
    sim_table.add_row({std::to_string(m),
                       predicted_fork ? "sigma_Fork" : "sigma_0",
                       simulated_fork ? "sigma_Fork" : "sigma_0",
                       predicted_fork == simulated_fork ? "yes" : "NO"});
  }
  sim_table.print();

  const bool ok = has_all_fork && fork_is_focal && sims_match;
  std::printf("\n[thm3] %s: all-fork is a Nash equilibrium (no unilateral "
              "bait can stop the fork),\n       it Pareto-dominates the "
              "baiting equilibrium (G/k = %.1f > R/k = %.1f), and the\n"
              "       protocol simulation matches the game's threshold. "
              "Baiting-based RC is not\n       (t,k)-robust in repeated "
              "rounds — the gap pRFT closes with DSIC.\n",
              ok ? "OK" : "MISMATCH", kG / kK, kR / kK);
  return ok ? 0 : 1;
}
