// Reproduces Theorem 3 (§4.4, Appendix D): baiting-based rational
// consensus (TRAP, Ranchal-Pedrosa & Gramoli 2022) admits a second Nash
// equilibrium — the whole coalition playing π_fork — whenever
// |K| > 2 + t0 − t, and that equilibrium Pareto-dominates the secure
// baiting equilibrium, making it focal (§4.3).
//
// Since PR 5 this bench rides the empirical engine end-to-end: the
// k-player bait/fork game is *realized from real runs* of the TRAP-style
// accountable quorum protocol — one simulation per baiter count m
// supplies the fork/avert outcome σ and the measured deposit burns, and
// only the market-side constants (collusion gain G, baiting reward R)
// remain model inputs. On the realized game we then
//
//  (1) enumerate the pure Nash equilibria and the Pareto frontier (the
//      focal set), and
//  (2) run the search loop — best-response dynamics, the same dynamic
//      src/search's BestResponseDriver iterates protocol-level — and
//      show it *lands on* the Pareto-dominant all-π_fork equilibrium
//      from every start inside the theorem's basin.
//
// The analytic threshold is kept as the prediction column and must match
// the simulated outcomes cell by cell.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/quorum_node.hpp"
#include "game/normal_form.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using baselines::QuorumForkPlan;
using baselines::QuorumNode;
using game::NormalFormGame;
using game::Profile;
using harness::ScenarioSpec;
using harness::Simulation;

namespace {

// TRAP instance: n = 30, t0 = ⌈n/3⌉ − 1 = 9 (quorum τ = 21), t = 7
// Byzantine and k = 7 rational colluders (k + t = 14 < n/2 = 15 and
// |K| = 7 > 2 + t0 − t = 4, satisfying Theorem 3's strict condition).
//
// Baiting threshold, derived from the partition geometry the theorem's
// proof uses. A defecting baiter still runs the honest protocol — it votes
// for exactly one value — so the adversary steers half the baiters to each
// side. Both sides reach the quorum τ iff
//    |A| + |B| + 2(k + t − m) + m >= 2τ,
// i.e. the fork survives m baiters iff m <= (n−k−t) + 2(k+t) − 2τ = 2.
//
// NOTE (reproduction finding): Appendix D prints the threshold as
// m > t0 + k + t − n/2; substituting its own |B| = (n−t−k)/2 geometry
// gives a different constant, and neither form accounts for the steered
// baiter votes above. The geometry-derived form used here is the one the
// protocol simulation confirms below.
constexpr std::uint32_t kN = 30;
constexpr std::uint32_t kT0 = 9;      // ⌈30/3⌉ − 1
constexpr std::uint32_t kTByz = 7;    // Byzantine colluders
constexpr std::uint32_t kK = 7;       // rational colluders
// Market-side model constants (everything protocol-side is measured):
// G is the external collusion gain on disagreement, R the baiting
// reward. G/k must clear the *measured* deposit burn for Theorem 3's
// profitability condition — the realized runs below burn L = 100 per
// forker (collateral), so G/k − L = 100 > 0 and G/k > R/k keeps all-fork
// Pareto-dominant.
constexpr double kR = 70.0;           // baiting reward (shared by baiters)
constexpr double kG = 1400.0;         // collusion gain on disagreement

/// Fork survives m defecting baiters iff both partition sides can still
/// reach the quorum, counting each steered baiter's single honest vote.
bool fork_succeeds_predicted(std::uint32_t m) {
  const std::uint32_t tau = kN - kT0;
  const std::uint32_t honest = kN - kK - kTByz;
  return honest + 2 * (kK + kTByz - m) + m >= 2 * tau;
}

/// One realized TRAP run with m baiters: the σ outcome and the measured
/// per-player deposit deltas of a representative forker and baiter.
struct RealizedCell {
  bool forked = false;
  double forker_delta = 0.0;  ///< measured; 0 when there is no forker
  double baiter_delta = 0.0;  ///< measured; 0 when there is no baiter
};

RealizedCell run_trap(std::uint32_t m) {
  auto plan = std::make_shared<QuorumForkPlan>();
  plan->n = kN;
  for (NodeId id = 0; id < kTByz + kK; ++id) plan->coalition.insert(id);
  const std::uint32_t half = (kN - kK - kTByz) / 2;
  for (NodeId id = kTByz + kK; id < kTByz + kK + half; ++id) {
    plan->side_a.insert(id);
  }
  for (NodeId id = kTByz + kK + half; id < kN; ++id) {
    plan->side_b.insert(id);
  }
  // The last m rational members defect to baiting.
  for (NodeId id = kTByz + kK - m; id < kTByz + kK; ++id) {
    plan->baiters.insert(id);
  }

  ScenarioSpec spec;
  spec.protocol = harness::Protocol::kQuorum;
  spec.committee.n = kN;
  spec.committee.t0 = kT0;
  spec.seed = 500 + m;
  spec.budget.target_blocks = 2;
  spec.workload.txs = 4;
  spec.workload.interval = msec(1);
  spec.adversary.node_factory = [plan](NodeId id,
                                       const harness::NodeEnv& env) {
    QuorumNode::Deps deps =
        harness::make_quorum_deps(id, env, /*accountable=*/true);
    deps.proto = consensus::ProtoId::kTrap;
    deps.fork_plan = plan;
    return std::make_unique<QuorumNode>(std::move(deps));
  };
  // The partition from the theorem's proof: the two honest sides cannot
  // hear each other during the attack (the colluders bridge them).
  const std::vector<NodeId> side_a_vec(plan->side_a.begin(),
                                       plan->side_a.end());
  const std::vector<NodeId> side_b_vec(plan->side_b.begin(),
                                       plan->side_b.end());
  spec.faults.partition({side_a_vec, side_b_vec}, msec(1), msec(400));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));

  RealizedCell cell;
  cell.forked = !sim.agreement_holds();
  if (m < kK) {  // a rational forker exists: the first rational slot
    cell.forker_delta =
        static_cast<double>(sim.deposits().delta(kTByz));
  }
  if (m > 0) {  // a baiter exists: the last rational slot
    cell.baiter_delta =
        static_cast<double>(sim.deposits().delta(kTByz + kK - 1));
  }
  return cell;
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Theorem 3 — TRAP's insecure focal Nash equilibrium\n");
  std::printf("(realized from runs through the empirical game engine)\n");
  std::printf("==========================================================\n\n");
  std::printf("TRAP instance: n = %u, t0 = %u (tau = %u), t = %u Byzantine, "
              "k = %u rational colluders,\nR = %.0f, G = %.0f; deposits "
              "measured from the runs. |K| = %u > 2 + t0 - t = %u\n"
              "(Theorem 3's condition). Geometry-derived baiting threshold: "
              "fork survives m <= %u baiters.\n\n",
              kN, kT0, kN - kT0, kTByz, kK, kR, kG, kK, 2 + kT0 - kTByz,
              (kN - kK - kTByz) + 2 * (kK + kTByz) - 2 * (kN - kT0));

  // ---- Realize every baiter count from actual protocol runs -------------
  std::vector<RealizedCell> realized(kK + 1);
  harness::Table sim_table({"baiters m", "game predicts", "simulated state",
                            "forker deposit", "match"});
  bool sims_match = true;
  for (std::uint32_t m = 0; m <= kK; ++m) {
    realized[m] = run_trap(m);
    const bool predicted = fork_succeeds_predicted(m);
    sims_match = sims_match && predicted == realized[m].forked;
    sim_table.add_row({std::to_string(m),
                       predicted ? "sigma_Fork" : "sigma_0",
                       realized[m].forked ? "sigma_Fork" : "sigma_0",
                       m < kK ? harness::fmt(realized[m].forker_delta, 0)
                              : "-",
                       predicted == realized[m].forked ? "yes" : "NO"});
  }
  std::printf("Protocol-level realization (TRAP-style accountable quorum, "
              "one run per m):\n\n");
  sim_table.print();
  std::printf("\nMeasured: every forker's deposit burns (PoF after the "
              "partition heals) — the\nempirical L = %.0f — while baiters "
              "are never slashed.\n\n",
              -realized[0].forker_delta);

  // ---- The k-player empirical game ---------------------------------------
  // Payoffs per rational colluder from own strategy and the number of
  // *other* baiters (0 = π_fork, 1 = π_bait): the σ outcome and the burn
  // come from the realized cell; G and R are the market model.
  NormalFormGame g(std::vector<int>(kK, 2));
  for (std::uint32_t i = 0; i < kK; ++i) {
    g.set_player_name(static_cast<int>(i), "K" + std::to_string(i));
    g.set_strategy_name(static_cast<int>(i), 0, "fork");
    g.set_strategy_name(static_cast<int>(i), 1, "bait");
  }
  const auto empirical_payoff = [&](int own, std::uint32_t others) {
    const std::uint32_t m = others + (own == 1 ? 1u : 0u);
    const RealizedCell& cell = realized[m];
    const std::uint32_t forkers = kK - m;
    if (own == 0) {
      const double gain =
          cell.forked ? kG / static_cast<double>(forkers == 0 ? 1 : forkers)
                      : 0.0;
      return gain + cell.forker_delta;
    }
    const double reward =
        cell.forked ? 0.0 : kR / static_cast<double>(m == 0 ? 1 : m);
    return reward + cell.baiter_delta;
  };
  for (const Profile& p : g.all_profiles()) {
    for (std::uint32_t i = 0; i < kK; ++i) {
      std::uint32_t others = 0;
      for (std::uint32_t j = 0; j < kK; ++j) {
        if (j != i && p[j] == 1) ++others;
      }
      g.set_payoff(p, static_cast<int>(i),
                   empirical_payoff(p[static_cast<std::size_t>(i)], others));
    }
  }

  const auto equilibria = g.pure_nash();
  std::printf("Pure Nash equilibria of the realized bait/fork game: %zu\n",
              equilibria.size());
  harness::Table eq_table({"Equilibrium", "per-player payoff", "secure?"});
  bool has_all_fork = false;
  bool has_all_bait = false;
  const Profile all_fork(kK, 0);
  const Profile all_bait(kK, 1);
  for (const Profile& eq : equilibria) {
    has_all_fork = has_all_fork || eq == all_fork;
    has_all_bait = has_all_bait || eq == all_bait;
    std::uint32_t m = 0;
    for (int s : eq) m += s == 1 ? 1u : 0u;
    eq_table.add_row({g.describe(eq), harness::fmt(g.payoff(eq, 0), 1),
                      realized[m].forked ? "NO - disagreement" : "yes"});
  }
  eq_table.print();

  const auto focal = g.pareto_frontier(equilibria);
  std::printf("\nPareto-undominated (focal) equilibria:\n");
  bool fork_is_focal = false;
  for (const Profile& eq : focal) {
    fork_is_focal = fork_is_focal || eq == all_fork;
    std::printf("  %s\n", g.describe(eq).c_str());
  }

  // ---- The search loop lands on the focal equilibrium --------------------
  // Best-response dynamics — the per-game dynamic the BestResponseDriver
  // (src/search) iterates at protocol level — from starts inside the
  // theorem's basin (m <= threshold: the fork still succeeds, so baiting
  // pays nothing and each baiter defects back). The insecure all-fork
  // equilibrium is not just present: the dynamic *converges to it*.
  std::printf("\nBest-response dynamics on the realized game:\n\n");
  harness::Table br_table({"start (baiters)", "steps", "lands on",
                           "insecure?"});
  bool lands_on_fork = true;
  for (std::uint32_t m0 : {1u, 2u}) {
    Profile start(kK, 0);
    for (std::uint32_t i = kK - m0; i < kK; ++i) {
      start[i] = 1;
    }
    const auto path = g.best_response_path(start, 64);
    const bool at_fork = path.back() == all_fork;
    lands_on_fork = lands_on_fork && at_fork && g.is_nash(path.back());
    std::uint32_t m_end = 0;
    for (int s : path.back()) m_end += s == 1 ? 1u : 0u;
    br_table.add_row({std::to_string(m0),
                      std::to_string(path.size() - 1),
                      g.describe(path.back()),
                      realized[m_end].forked ? "YES" : "no"});
  }
  // From the designed all-bait start the dynamic stays put (it is the
  // secure equilibrium) — the focal-point argument, not the dynamics, is
  // what breaks it: all-fork Pareto-dominates.
  const bool bait_is_stable = g.best_response_path(all_bait, 64).size() == 1;
  br_table.print();

  const bool pareto =
      g.pareto_dominates(all_fork, all_bait);
  const bool ok = sims_match && has_all_fork && has_all_bait &&
                  fork_is_focal && lands_on_fork && bait_is_stable && pareto;
  std::printf("\n[thm3] %s: realized from runs — all-fork is a Nash "
              "equilibrium (G/k + measured burn = %.1f > 0),\n       it "
              "Pareto-dominates the baiting equilibrium (%.1f > %.1f) and "
              "is focal, and the search\n       dynamic lands on it from "
              "every start inside the threshold basin. Baiting-based RC\n"
              "       is not (t,k)-robust in repeated rounds — the gap "
              "pRFT closes with DSIC.\n",
              ok ? "OK" : "MISMATCH",
              kG / kK + realized[0].forker_delta,
              g.payoff(all_fork, 0), g.payoff(all_bait, 0));
  return ok ? 0 : 1;
}
