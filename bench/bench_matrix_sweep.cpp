// CLI driver for the seed-matrix scenario harness: sweeps committee sizes ×
// network models × seeds for a chosen protocol and prints the per-cell
// safety/traffic table. This is the manual counterpart of tests/matrix_test
// — useful for widening the sweep far beyond what the test gate runs, e.g.:
//
//   bench_matrix_sweep --protocol=prft --sizes=4,7,16,31,64 --seeds=20
//   bench_matrix_sweep --protocol=hotstuff --nets=partial-synchrony
//   bench_matrix_sweep --protocol=all --crashes=1 --partition --budget-ms=500
//   bench_matrix_sweep --workers=1 --no-sync   # serial, no catch-up
//   bench_matrix_sweep --json=path.json        # artifact (default
//                                              #   BENCH_matrix.json)
//   bench_matrix_sweep --smoke                 # one small cell per net —
//                                              #   CI's cells/sec check
//   bench_matrix_sweep --prof-level=0          # profiling off (0..3) for
//                                              #   overhead-free timing
//   bench_matrix_sweep --trace=2               # flight recorder (0..3):
//                                              #   1 state, 2 +sends,
//                                              #   3 +recv/deliver
//   bench_matrix_sweep --forensics=build/forensics  # dump bundles for
//                                              #   unsafe/violated cells
//   bench_matrix_sweep --metrics=0             # metrics timelines (0..2;
//                                              #   default 1: virtual-time
//                                              #   gauges + liveness watchdog)
//   bench_matrix_sweep --compare=bench/baselines/BENCH_matrix_smoke.baseline.json
//                                              # regression-gate this run
//   bench_matrix_sweep --dump-slowest=trace.json    # re-run the slowest
//                                              #   cell traced; merged
//                                              #   slices+counters JSON
//
// Cells run in parallel by default (one worker per hardware thread; each
// cell is an independent seeded simulation, so results are identical to a
// serial sweep). Catch-up/state transfer (ScenarioSpec::sync_plan) is on
// by default; --no-sync reproduces the stay-behind-forever behaviour.
// Besides the printed table, the sweep emits a machine-readable
// BENCH_matrix.json (per-cell safety, traffic and wall-clock) so the perf
// trajectory is tracked across PRs.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "harness/compare.hpp"
#include "harness/flags.hpp"
#include "harness/jsonio.hpp"
#include "harness/matrix.hpp"
#include "harness/metrics.hpp"
#include "harness/profiler.hpp"

namespace {

using ratcon::harness::MatrixSpec;
using ratcon::harness::NetKind;
using ratcon::harness::Protocol;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ratcon::harness::Flags flags(argc, argv);

  MatrixSpec spec;

  const std::string proto = flags.get_str("protocol", "prft");
  if (proto == "prft") {
    spec.protocols = {Protocol::kPrft};
  } else if (proto == "hotstuff") {
    spec.protocols = {Protocol::kHotStuff};
  } else if (proto == "raftlite") {
    spec.protocols = {Protocol::kRaftLite};
  } else if (proto == "quorum") {
    spec.protocols = {Protocol::kQuorum};
  } else if (proto == "all") {
    spec.protocols = {Protocol::kPrft, Protocol::kHotStuff,
                      Protocol::kRaftLite, Protocol::kQuorum};
  } else {
    std::fprintf(stderr,
                 "unknown --protocol=%s (prft|hotstuff|raftlite|quorum|all)\n",
                 proto.c_str());
    return 2;
  }

  if (flags.has("sizes")) {
    spec.committee_sizes.clear();
    for (const std::string& s : split_csv(flags.get_str("sizes", ""))) {
      unsigned long parsed = 0;
      try {
        parsed = std::stoul(s);
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed == 0 || parsed > 4096 || s.find('-') != std::string::npos) {
        std::fprintf(stderr, "bad committee size '%s' in --sizes\n",
                     s.c_str());
        return 2;
      }
      spec.committee_sizes.push_back(static_cast<std::uint32_t>(parsed));
    }
  }
  if (flags.has("nets")) {
    spec.nets.clear();
    for (const std::string& s : split_csv(flags.get_str("nets", ""))) {
      if (s == "synchronous") {
        spec.nets.push_back(NetKind::kSynchronous);
      } else if (s == "partial-synchrony") {
        spec.nets.push_back(NetKind::kPartialSynchrony);
      } else if (s == "asynchronous") {
        spec.nets.push_back(NetKind::kAsynchronous);
      } else {
        std::fprintf(stderr, "unknown net model '%s'\n", s.c_str());
        return 2;
      }
    }
  }
  const std::int64_t seed_count = flags.get_int("seeds", 5);
  spec.seeds.clear();
  for (std::int64_t s = 1; s <= seed_count; ++s) {
    spec.seeds.push_back(static_cast<std::uint64_t>(s));
  }
  spec.target_blocks =
      static_cast<std::uint64_t>(flags.get_int("blocks", 3));

  // Workload surface (same spelling as bench_workload): defaults keep the
  // legacy fixed-interval 12-tx plan; --workload=open/--rate/--zipf/… give
  // the sweep the full engine.
  ratcon::harness::WorkloadFlags wl_defaults;
  wl_defaults.spec =
      ratcon::workload::WorkloadSpec::fixed(/*txs=*/12);
  const ratcon::harness::WorkloadFlags wl =
      ratcon::harness::parse_workload_flags(flags, wl_defaults);
  spec.workload_spec = wl.spec;
  spec.max_block_txs = wl.max_block_txs;
  spec.max_block_bytes = wl.max_block_bytes;
  spec.mempool_cap = wl.mempool.max_pending;

  spec.crash_count =
      static_cast<std::uint32_t>(flags.get_int("crashes", 0));
  spec.partition_pre_gst = flags.has("partition");
  spec.cell_budget_ms = flags.get_double("budget-ms", 0);
  spec.workers = static_cast<std::uint32_t>(flags.get_int("workers", 0));
  spec.sync_enabled = !flags.has("no-sync");

  // --smoke: the quick per-PR throughput probe — one small committee over
  // all three network models, two seeds. Explicit flags still win.
  if (flags.has("smoke")) {
    if (!flags.has("sizes")) spec.committee_sizes = {7};
    if (!flags.has("seeds")) spec.seeds = {1, 2};
  }

  // Observability surface (one spelling across the sweep benches, see
  // harness/flags.hpp): profiler on, flight recorder off, metrics
  // timelines on at level 1 — this sweep is the per-PR perf-trajectory
  // probe, so the virtual-time gauges are part of its artifact by default.
  ratcon::harness::ObservabilityFlags obs_defaults;
  obs_defaults.metrics_level = 1;
  const ratcon::harness::ObservabilityFlags obs =
      ratcon::harness::parse_observability_flags(flags, obs_defaults);
  ratcon::harness::Profiler::SetDefaultLevel(obs.prof_level);
  ratcon::harness::TraceSink::SetDefaultLevel(obs.trace_level);
  ratcon::harness::MetricsRegistry::SetDefaultLevel(obs.metrics_level);
  spec.trace_level = obs.trace_level;
  spec.metrics_level = obs.metrics_level;
  spec.forensics_dir = obs.forensics_dir;

  if (spec.committee_sizes.empty() || spec.nets.empty() ||
      spec.seeds.empty()) {
    std::fprintf(stderr,
                 "empty sweep: need at least one size, net, and seed\n");
    return 2;
  }

  const auto report = ratcon::harness::run_matrix(spec);
  std::printf("%s\n", report.summary().c_str());

  // Machine-readable artifact for the cross-PR perf trajectory.
  const std::string json_path = flags.get_str("json", "BENCH_matrix.json");
  {
    using ratcon::harness::JsonWriter;
    JsonWriter json;
    json.begin_object();
    json.key("bench").value("matrix_sweep");
    json.key("cells").value(static_cast<std::uint64_t>(report.cell_count()));
    json.key("all_safe").value(report.all_safe());
    json.key("cell_budget_ms").value(spec.cell_budget_ms);
    double total_wall = 0;
    std::uint64_t total_msgs = 0, total_bytes = 0;
    json.key("results").begin_array();
    for (const auto& cell : report.cells) {
      total_wall += cell.wall_ms;
      total_msgs += cell.messages;
      total_bytes += cell.bytes;
      json.begin_object();
      json.key("label").value(cell.label());
      json.key("safe").value(cell.safe());
      json.key("min_height").value(cell.min_height);
      json.key("live_min_height").value(cell.live_min_height);
      json.key("messages").value(cell.messages);
      json.key("bytes").value(cell.bytes);
      json.key("sync_messages").value(cell.sync_messages);
      json.key("wall_ms").value(cell.wall_ms);
      json.key("over_budget").value(cell.over_budget());
      if (cell.recovery_latency() == ratcon::kSimTimeNever) {
        json.key("recovery_latency_us").null();
      } else {
        json.key("recovery_latency_us")
            .value(static_cast<std::int64_t>(cell.recovery_latency()));
      }
      json.key("workload").begin_object();
      json.key("submitted").value(cell.workload.submitted);
      json.key("finalized").value(cell.workload.finalized);
      json.key("tx_per_sec").value(cell.workload.tx_per_sec());
      json.key("p50_us")
          .value(static_cast<std::int64_t>(cell.workload.latency.p50()));
      json.key("p99_us")
          .value(static_cast<std::int64_t>(cell.workload.latency.p99()));
      json.end_object();
      if (!cell.metrics.empty()) {
        json.key("metrics");
        ratcon::harness::write_metrics_json(json, cell.metrics);
      }
      // Per-cell phase totals (the full item dump lives at the top level).
      json.key("profile").begin_object();
      for (const auto phase : ratcon::harness::kProfPhases) {
        json.key(ratcon::harness::to_string(phase)).begin_object();
        json.key("ns").value(cell.profile.sum(phase));
        json.key("count").value(cell.profile.count(phase));
        json.end_object();
      }
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.key("total_wall_ms").value(total_wall);
    json.key("total_messages").value(total_msgs);
    json.key("total_bytes").value(total_bytes);
    {
      const auto wl_total = report.aggregate_workload();
      json.key("workload").begin_object();
      json.key("submitted").value(wl_total.submitted);
      json.key("finalized").value(wl_total.finalized);
      json.key("evicted").value(wl_total.evicted);
      json.key("rejected").value(wl_total.rejected);
      json.key("tx_per_sec").value(wl_total.tx_per_sec());
      json.key("p50_us")
          .value(static_cast<std::int64_t>(wl_total.latency.p50()));
      json.key("p99_us")
          .value(static_cast<std::int64_t>(wl_total.latency.p99()));
      json.end_object();
    }
    {
      const auto tr = report.aggregate_trace();
      json.key("trace").begin_object();
      json.key("level").value(static_cast<std::int64_t>(tr.level));
      json.key("recorded").value(tr.recorded);
      json.key("dropped").value(tr.dropped);
      json.key("violations").value(tr.violations);
      json.key("verdicts").begin_array();
      for (const std::string& v : tr.verdicts) json.value(v);
      json.end_array();
      json.end_object();
    }
    {
      // Per-protocol round-duration percentiles (virtual time — entry to
      // entry across every replica), plus the watchdog's stall verdicts.
      json.key("rounds").begin_object();
      for (const auto& [proto, hist] : report.round_durations_by_protocol()) {
        json.key(ratcon::harness::to_string(proto)).begin_object();
        json.key("p50_us").value(static_cast<std::int64_t>(hist.p50()));
        json.key("p99_us").value(static_cast<std::int64_t>(hist.p99()));
        json.key("count").value(hist.total());
        json.end_object();
      }
      json.end_object();
      const auto stalled = report.stalled_cells();
      json.key("stalled_cells").begin_array();
      for (const auto* cell : stalled) {
        json.begin_object();
        json.key("label").value(cell->label());
        json.key("verdict").value(cell->metrics.stall_verdict);
        json.end_object();
      }
      json.end_array();
      const auto metrics_total = report.aggregate_metrics();
      if (!metrics_total.empty()) {
        json.key("metrics");
        ratcon::harness::write_metrics_json(json, metrics_total);
      }
    }
    json.key("cells_per_sec").value(report.cells_per_sec());
    json.key("profile");
    ratcon::harness::write_profile_json(json, report.aggregate_profile());
    json.end_object();
    if (ratcon::harness::write_text_file(json_path, json.str())) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("WARNING: could not write %s\n", json_path.c_str());
    }
  }

  // --dump-slowest: re-run the slowest cell serially with the flight
  // recorder and metrics timelines on, and write the merged Chrome trace
  // JSON (slices + flows + counter tracks — one file for ui.perfetto.dev).
  if (!obs.dump_slowest.empty() && !report.cells.empty()) {
    const auto* slowest = report.slowest_cells(1).front();
    auto one = spec.to_scenario(slowest->protocol, slowest->n, slowest->net,
                                slowest->seed);
    one.trace_level = std::max(obs.trace_level, 2);
    one.metrics_level = std::max(obs.metrics_level, 1);
    ratcon::harness::Simulation sim(one);
    (void)sim.run_to_completion();
    if (sim.dump_trace(obs.dump_slowest)) {
      std::printf("wrote %s (slowest cell: %s)\n", obs.dump_slowest.c_str(),
                  slowest->label().c_str());
    } else {
      std::printf("WARNING: could not write %s\n", obs.dump_slowest.c_str());
    }
  }

  // --compare: diff this run's artifact against a committed baseline; a
  // fail verdict fails the bench (warns do not).
  bool compare_failed = false;
  if (!obs.compare_baseline.empty()) {
    const auto cmp =
        ratcon::harness::compare_files(obs.compare_baseline, json_path);
    std::printf("%s\n", cmp.summary().c_str());
    compare_failed = cmp.verdict() >= 2;
  }

  const auto bad = report.unsafe_cells();
  if (!bad.empty()) {
    std::printf("\nUNSAFE CELLS (%zu):\n", bad.size());
    for (const auto* cell : bad) {
      std::printf("  %s\n", cell->label().c_str());
    }
    return 1;
  }
  const auto slow = report.over_budget_cells();
  if (!slow.empty()) {
    std::printf("\n%zu cell(s) over the %.1f ms budget\n", slow.size(),
                spec.cell_budget_ms);
    return 1;
  }
  if (compare_failed) {
    std::printf("\nbaseline comparison FAILED (see verdict above)\n");
    return 1;
  }
  std::printf("\nall %zu cells safe, %.2f cells/sec\n", report.cell_count(),
              report.cells_per_sec());
  return 0;
}
