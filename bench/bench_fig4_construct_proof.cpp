// Reproduces Figure 4 (Appendix G): the ConstructProof procedure that
// extracts the Proof-of-Fraud set D from accumulated message sets M.
// Verifies the extraction semantics on controlled double-signing patterns
// and measures its cost as committee size grows.

#include <chrono>
#include <cstdio>

#include "consensus/fraud.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using namespace ratcon::consensus;

namespace {

struct Committee {
  crypto::KeyRegistry registry;
  std::vector<crypto::KeyPair> keys;
  explicit Committee(std::uint32_t n) {
    for (NodeId id = 0; id < n; ++id) keys.push_back(registry.generate(id, 3));
  }
};

/// Builds the message set M of a round where `double_signers` players
/// signed both values (commit phase) and everyone signed value A.
std::vector<SignedValue> build_m(const Committee& c, std::uint32_t n,
                                 std::uint32_t double_signers) {
  const crypto::Hash256 va = crypto::sha256(std::string_view("value-a"));
  const crypto::Hash256 vb = crypto::sha256(std::string_view("value-b"));
  std::vector<SignedValue> m;
  for (NodeId id = 0; id < n; ++id) {
    m.push_back({PhaseTag::kCommit, 1, va,
                 sign_phase(ProtoId::kPrft, PhaseTag::kCommit, 1, va, id,
                            c.keys[id].sk)});
  }
  for (NodeId id = 0; id < double_signers; ++id) {
    m.push_back({PhaseTag::kCommit, 1, vb,
                 sign_phase(ProtoId::kPrft, PhaseTag::kCommit, 1, vb, id,
                            c.keys[id].sk)});
  }
  return m;
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Figure 4 — ConstructProof(M, t0): PoF extraction\n");
  std::printf("==========================================================\n\n");

  // Correctness: sweep the number of double-signers around t0.
  std::printf("Extraction semantics (n = 13, t0 = ceil(13/4)-1 = 3):\n\n");
  const std::uint32_t n = 13;
  const std::uint32_t t0 = 3;
  Committee committee(n);
  harness::Table table({"double-signers d", "|D| extracted",
                        "verified guilty |V(D)|", "honest framed",
                        "|D| > t0 (Expose fires)"});
  bool ok = true;
  for (std::uint32_t d = 0; d <= 6; ++d) {
    const auto m = build_m(committee, n, d);
    const FraudSet proofs = construct_proof(m);
    const auto guilty = verify_fraud_proofs(ProtoId::kPrft, proofs,
                                            committee.registry);
    bool honest_framed = false;
    for (NodeId g : guilty) {
      if (g >= d) honest_framed = true;  // only ids < d double-signed
    }
    ok = ok && proofs.size() == d && guilty.size() == d && !honest_framed;
    table.add_row({std::to_string(d), std::to_string(proofs.size()),
                   std::to_string(guilty.size()),
                   honest_framed ? "YES (bug)" : "no",
                   proofs.size() > t0 ? "yes" : "no"});
  }
  table.print();

  // Scaling: every player double-signs (worst case), measure runtime.
  std::printf("\nExtraction cost (all n players double-signing, wall time "
              "incl. signature verification):\n\n");
  harness::Table perf({"n", "|M| statements", "|D|", "extract+verify"});
  for (std::uint32_t size : {8u, 16u, 32u, 64u, 128u}) {
    Committee big(size);
    const auto m = build_m(big, size, size);
    const auto start = std::chrono::steady_clock::now();
    const FraudSet proofs = construct_proof(m);
    const auto guilty =
        verify_fraud_proofs(ProtoId::kPrft, proofs, big.registry);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    ok = ok && guilty.size() == size;
    perf.add_row({std::to_string(size), std::to_string(m.size()),
                  std::to_string(proofs.size()), harness::fmt(ms, 3) + " ms"});
  }
  perf.print();

  std::printf("\n[fig4] %s: D contains exactly the double-signers, honest "
              "players are never framed,\n       and Expose triggers "
              "precisely when |D| >= t0 + 1.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
