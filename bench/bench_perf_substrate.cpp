// Substrate performance benchmarks (google-benchmark): the primitives
// whose cost dominates simulated rounds — SHA-256, HMAC signatures,
// envelope encode/verify, Merkle roots, the event queue — plus an
// end-to-end pRFT round on the simulator. Not a paper figure; used to
// size the sweeps in the other benches.

#include <benchmark/benchmark.h>

#include "consensus/envelope.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "harness/scenario.hpp"
#include "net/event_queue.hpp"

using namespace ratcon;

namespace {

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::sha256(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSign(benchmark::State& state) {
  crypto::KeyRegistry registry;
  const crypto::KeyPair kp = registry.generate(0, 1);
  const Bytes msg(256, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::sign(kp.sk, ByteSpan(msg.data(), msg.size())));
  }
}
BENCHMARK(BM_HmacSign);

void BM_SigVerify(benchmark::State& state) {
  crypto::KeyRegistry registry;
  const crypto::KeyPair kp = registry.generate(0, 1);
  const Bytes msg(256, 0x5a);
  const crypto::Signature sig =
      crypto::sign(kp.sk, ByteSpan(msg.data(), msg.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.verify(kp.pk, ByteSpan(msg.data(), msg.size()), sig));
  }
}
BENCHMARK(BM_SigVerify);

void BM_EnvelopeEncodeVerify(benchmark::State& state) {
  crypto::KeyRegistry registry;
  const crypto::KeyPair kp = registry.generate(0, 1);
  const Bytes body(static_cast<std::size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    const consensus::Envelope env = consensus::make_envelope(
        consensus::ProtoId::kPrft, 1, 7, 0, body, kp.sk);
    const Bytes wire = env.encode();
    const consensus::Envelope back =
        consensus::Envelope::decode(ByteSpan(wire.data(), wire.size()));
    benchmark::DoNotOptimize(consensus::verify_envelope(back, registry));
  }
}
BENCHMARK(BM_EnvelopeEncodeVerify)->Arg(64)->Arg(4096);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<crypto::Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::sha256("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::compute_root(leaves));
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    net::EventQueue q;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule_at(i * 7 % 1000, [&sink] { ++sink; });
    }
    while (q.step()) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

void BM_PrftRound(benchmark::State& state) {
  // End-to-end: one committee agreeing on `target` blocks per iteration.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    harness::ScenarioSpec spec;
    spec.committee.n = n;
    spec.seed = 42;
    spec.budget.target_blocks = 2;
    spec.workload.txs = 4;
    spec.workload.start = usec(1);
    spec.workload.interval = usec(1);
    harness::Simulation sim(spec);
    sim.start();
    sim.run_until(sec(30));
    benchmark::DoNotOptimize(sim.min_height());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_PrftRound)->Arg(4)->Arg(7)->Arg(13)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
