// Reproduces Table 2 (paper §4.1.1): the payoff function f(σ, θ) of the
// rational-player utility model, printed from the implementation in
// src/game/utility.{hpp,cpp} together with the preferred-states column.
//
// This is the model every utility-level experiment (Theorems 1-3, Lemma 4)
// evaluates against, so regenerating it from code pins the exact semantics
// used downstream.

#include <cstdio>

#include "game/utility.hpp"
#include "harness/table.hpp"

using namespace ratcon;

int main() {
  std::printf("=====================================================\n");
  std::printf("Table 2 — payoff function f(sigma, theta)  [alpha = 1]\n");
  std::printf("=====================================================\n\n");

  const double alpha = 1.0;
  harness::Table table({"Player Type", "sigma_NP", "sigma_CP", "sigma_Fork",
                        "sigma_0", "Preferred States"});
  for (int theta = 3; theta >= 0; --theta) {
    auto cell = [&](game::SystemState s) {
      const double v = game::payoff_f(s, theta, alpha);
      return v > 0 ? std::string("+a") : v < 0 ? std::string("-a")
                                                : std::string("0");
    };
    table.add_row({"theta = " + std::to_string(theta),
                   cell(game::SystemState::kNoProgress),
                   cell(game::SystemState::kCensorship),
                   cell(game::SystemState::kFork),
                   cell(game::SystemState::kHonest),
                   game::preferred_states(theta)});
  }
  table.print();

  std::printf("\nPaper's Table 2 (for comparison):\n");
  std::printf("  theta=3:  a  a  a  0   No Progress, Censorship, Fork\n");
  std::printf("  theta=2: -a  a  a  0   Censorship, Fork\n");
  std::printf("  theta=1: -a -a  a  0   Fork\n");
  std::printf("  theta=0: -a -a -a  0   Honest Execution\n");

  // Discounted-utility sanity row (Eq. 1): a θ=1 player in permanent fork
  // vs honest execution, δ = 0.9.
  std::printf("\nEq. 1 spot-check (delta = 0.9, infinite horizon):\n");
  std::printf("  theta=1, sigma_Fork forever : U = %+.2f  (= a/(1-delta))\n",
              game::stationary_discounted(
                  game::payoff_f(game::SystemState::kFork, 1, alpha), 0.9));
  std::printf("  theta=1, sigma_0 forever    : U = %+.2f\n",
              game::stationary_discounted(
                  game::payoff_f(game::SystemState::kHonest, 1, alpha), 0.9));
  std::printf("\n[table2] OK: implementation matches the paper's matrix.\n");
  return 0;
}
