// Reproduces Table 2 (paper §4.1.1): the payoff function f(σ, θ) of the
// rational-player utility model — measured, not transcribed. Each system
// state column is *realized by an actual Simulation run* (honest execution,
// a Theorem-1 abstention coalition, a Theorem-2 partial-censorship
// coalition, and a fork coalition against the pBFT-style baseline), and the
// cell values are what the PayoffAccountant pays a probe player of type θ
// per round of that run. No hand-fed payoff matrix remains: if the runs
// stopped realizing their states or the accountant's Table 2 semantics
// drifted, the bench would report the mismatch.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "game/utility.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "rational/catalog.hpp"
#include "rational/payoff.hpp"

using namespace ratcon;
using rational::PayoffAccountant;
using rational::PayoffParams;
using rational::PayoffReport;
using rational::ProfileSpec;

namespace {

struct Realized {
  game::SystemState state;           ///< state every scored height realized
  std::vector<game::RoundOutcome> probe_rounds;  ///< honest probe's stream
  bool uniform = true;               ///< all scored heights agree
};

/// Runs one scenario and returns the probe player's per-height outcome
/// stream (the probe is honest and never penalized, so its round utility
/// is exactly E[f(σ, θ)]).
Realized realize(game::SystemState want, std::uint64_t seed) {
  harness::ScenarioSpec spec;
  ProfileSpec profile;
  NodeId probe = 0;
  PayoffParams params;

  switch (want) {
    case game::SystemState::kHonest:
      spec.committee.n = 9;
      spec.budget.target_blocks = 3;
      probe = 8;
      break;
    case game::SystemState::kNoProgress:
      // Theorem 1's range: 3 of 9 abstain, the quorum τ = 7 never forms.
      spec.committee.n = 9;
      spec.budget.target_blocks = 3;
      spec.budget.horizon = sec(30);
      for (NodeId id : {0u, 1u, 2u}) {
        profile.strategies[id] = game::Strategy::kAbstain;
      }
      probe = 8;
      break;
    case game::SystemState::kCensorship:
      // Theorem 2's π_pc coalition: liveness holds, tx_h never lands.
      spec.committee.n = 9;
      spec.budget.target_blocks = 3;
      spec.budget.horizon = sec(600);
      profile.censored_txs = {1};
      for (NodeId id : {0u, 1u, 2u, 3u}) {
        profile.strategies[id] = game::Strategy::kPartialCensor;
      }
      params.watched_tx = 1;
      probe = 8;
      break;
    case game::SystemState::kFork:
      // k + t = 6 equivocators fork the pBFT-style baseline at n = 12
      // (Table 1's safety boundary). Catch-up stays out: the probe is the
      // protocol's intrinsic behavior.
      spec.protocol = harness::Protocol::kQuorum;
      spec.committee.n = 12;
      spec.budget.target_blocks = 3;
      spec.budget.horizon = sec(120);
      spec.sync_plan.enabled = false;
      for (NodeId id = 0; id < 6; ++id) {
        profile.strategies[id] = game::Strategy::kDoubleSign;
      }
      probe = 11;
      break;
  }
  spec.seed = seed;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  rational::apply_profile(spec, profile);

  harness::Simulation sim(spec);
  (void)sim.run_to_completion();

  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);
  Realized out{report.height_states.front(),
               report.of(probe).rounds,
               true};
  for (game::SystemState s : report.height_states) {
    out.uniform = out.uniform && s == out.state;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("Table 2 — payoff function f(sigma, theta)  [alpha = 1]\n");
  std::printf("  (every column realized by a Simulation run and paid\n");
  std::printf("   out through the PayoffAccountant)\n");
  std::printf("=====================================================\n\n");

  const game::UtilityParams util;  // alpha = 1, L = 10, delta = 0.9
  const game::SystemState columns[] = {
      game::SystemState::kNoProgress, game::SystemState::kCensorship,
      game::SystemState::kFork, game::SystemState::kHonest};

  bool ok = true;
  std::map<game::SystemState, Realized> runs;
  for (game::SystemState s : columns) {
    Realized r = realize(s, 700 + static_cast<std::uint64_t>(s));
    ok = ok && r.uniform && r.state == s;
    std::printf("  run for %-10s -> realized %-10s %s\n", game::to_string(s),
                game::to_string(r.state),
                r.uniform && r.state == s ? "(as required)" : "(MISMATCH)");
    runs.emplace(s, std::move(r));
  }
  std::printf("\n");

  harness::Table table({"Player Type", "sigma_NP", "sigma_CP", "sigma_Fork",
                        "sigma_0", "Preferred States"});
  for (int theta = 3; theta >= 0; --theta) {
    auto cell = [&](game::SystemState s) {
      // The probe is honest and unpenalized, so its per-round utility in
      // the realized run is exactly f(sigma, theta).
      const double v =
          game::round_utility(runs.at(s).probe_rounds, theta, util);
      const double expect = game::payoff_f(s, theta, util.alpha);
      if (v != expect) ok = false;
      return v > 0 ? std::string("+a") : v < 0 ? std::string("-a")
                                               : std::string("0");
    };
    table.add_row({"theta = " + std::to_string(theta),
                   cell(game::SystemState::kNoProgress),
                   cell(game::SystemState::kCensorship),
                   cell(game::SystemState::kFork),
                   cell(game::SystemState::kHonest),
                   game::preferred_states(theta)});
  }
  table.print();

  std::printf("\nPaper's Table 2 (for comparison):\n");
  std::printf("  theta=3:  a  a  a  0   No Progress, Censorship, Fork\n");
  std::printf("  theta=2: -a  a  a  0   Censorship, Fork\n");
  std::printf("  theta=1: -a -a  a  0   Fork\n");
  std::printf("  theta=0: -a -a -a  0   Honest Execution\n");

  // Discounted-utility sanity row (Eq. 1), from the realized streams: a
  // θ=1 player across the fork run vs the honest run, δ = 0.9.
  std::printf("\nEq. 1 spot-check (delta = 0.9, from the realized runs):\n");
  std::printf("  theta=1, fork run   : U = %+.2f  (infinite horizon: "
              "a/(1-delta) = %+.2f)\n",
              game::discounted_utility(
                  runs.at(game::SystemState::kFork).probe_rounds, 1, util),
              game::stationary_discounted(util.alpha, util.delta));
  std::printf("  theta=1, honest run : U = %+.2f\n",
              game::discounted_utility(
                  runs.at(game::SystemState::kHonest).probe_rounds, 1, util));
  std::printf("\n[table2] %s: every cell measured from simulation matches "
              "the paper's matrix.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
