// Wire-format shootout: races the owning length-prefixed codec
// (Envelope::decode — header parse + body copy) against the flat zero-copy
// layout (WireView::parse — fixed-offset reads, body left as a span into
// the wire buffer) over representative pRFT message shapes, from the
// 100-byte vote up to a multi-block sync batch. Both formats read the SAME
// bytes — the shootout is about decode cost, not wire size — so bytes/msg
// is reported once per shape and the codecs are cross-checked field-for-
// field before any timing runs.
//
// Reported per shape × format:
//   decode ns/msg          pure structural decode
//   decode+verify ns/msg   the full receive path (decode, H(body), HMAC)
//   decode MB/s            wire throughput of the pure decode
// plus encode ns/msg (one encode path — the layouts are byte-identical).
//
//   bench_serialization                      # full shootout
//   bench_serialization --smoke              # CI probe (fewer iterations)
//   bench_serialization --iters=200000       # override per-shape iterations
//   bench_serialization --json=path.json     # artifact (default
//                                            #   BENCH_serialization.json)
//
// Exits non-zero if the two decode paths ever disagree about a message —
// the bench doubles as an equivalence check on real-shaped traffic.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "consensus/envelope.hpp"
#include "core/messages.hpp"
#include "crypto/sig.hpp"
#include "harness/flags.hpp"
#include "harness/jsonio.hpp"

namespace {

using namespace ratcon;
using consensus::Certificate;
using consensus::Envelope;
using consensus::PhaseSig;
using consensus::PhaseTag;
using consensus::ProtoId;
using consensus::WireView;

// Committee the shapes are sized for: n = 16, t0 = 5 → quorum 11. Matches
// the mid-sized cells of the matrix sweeps.
constexpr std::uint32_t kN = 16;
constexpr std::uint32_t kQuorum = 11;
constexpr Round kRound = 7;

struct Keyring {
  crypto::KeyRegistry registry;
  std::vector<crypto::KeyPair> keys;

  Keyring() {
    keys.reserve(kN);
    for (NodeId id = 0; id < kN; ++id) keys.push_back(registry.generate(id, 42));
  }
};

Certificate make_cert(const Keyring& ring, PhaseTag phase,
                      const crypto::Hash256& value) {
  Certificate cert;
  cert.phase = phase;
  cert.round = kRound;
  cert.value = value;
  for (NodeId id = 0; id < kQuorum; ++id) {
    cert.sigs.push_back(consensus::sign_phase(ProtoId::kPrft, phase, kRound,
                                              value, id, ring.keys[id].sk));
  }
  return cert;
}

ledger::Block make_block(const Keyring& ring, std::uint32_t txs,
                         std::size_t payload_bytes) {
  ledger::Block block;
  block.parent = crypto::sha256("parent");
  block.round = kRound;
  block.proposer = 0;
  for (std::uint32_t i = 0; i < txs; ++i) {
    ledger::Transaction tx;
    tx.id = i + 1;
    tx.sender = i % kN;
    tx.payload.assign(payload_bytes, static_cast<std::uint8_t>(i));
    block.txs.push_back(std::move(tx));
  }
  (void)ring;
  return block;
}

struct Shape {
  std::string name;
  prft::MsgType type;
  Bytes body;
};

// Real message bodies built through the production codecs, spanning the
// size spectrum the protocols actually put on the wire.
std::vector<Shape> make_shapes(const Keyring& ring) {
  const crypto::Hash256 h = crypto::sha256("value");
  std::vector<Shape> shapes;

  {  // Vote: hash + two phase signatures — the per-round chatter.
    prft::VoteBody b;
    b.h = h;
    b.leader_pro_sig = consensus::sign_phase(ProtoId::kPrft, PhaseTag::kPropose,
                                             kRound, h, 0, ring.keys[0].sk);
    b.vote_sig = consensus::sign_phase(ProtoId::kPrft, PhaseTag::kVote, kRound,
                                       h, 1, ring.keys[1].sk);
    Writer w;
    b.encode(w);
    shapes.push_back({"vote", prft::MsgType::kVote, w.take()});
  }
  {  // Commit: carries the quorum vote certificate.
    prft::CommitBody b;
    b.h = h;
    b.leader_pro_sig = consensus::sign_phase(ProtoId::kPrft, PhaseTag::kPropose,
                                             kRound, h, 0, ring.keys[0].sk);
    b.vote_cert = make_cert(ring, PhaseTag::kVote, h);
    b.commit_sig = consensus::sign_phase(ProtoId::kPrft, PhaseTag::kCommit,
                                         kRound, h, 1, ring.keys[1].sk);
    Writer w;
    b.encode(w);
    shapes.push_back({"commit", prft::MsgType::kCommit, w.take()});
  }
  {  // Reveal: quorum commit evidences, each with its own vote certificate
     // — the O(κ·n²) body that dominates pRFT's size column (Figure 3).
    prft::RevealBody b;
    b.h_tc = h;
    b.h_l = h;
    for (NodeId id = 0; id < kQuorum; ++id) {
      prft::CommitEvidence ev;
      ev.commit_sig = consensus::sign_phase(ProtoId::kPrft, PhaseTag::kCommit,
                                            kRound, h, id, ring.keys[id].sk);
      ev.vote_cert = make_cert(ring, PhaseTag::kVote, h);
      b.commits.push_back(std::move(ev));
    }
    b.reveal_sig = consensus::sign_phase(ProtoId::kPrft, PhaseTag::kReveal,
                                         kRound, h, 1, ring.keys[1].sk);
    Writer w;
    b.encode(w);
    shapes.push_back({"reveal", prft::MsgType::kReveal, w.take()});
  }
  {  // Propose: one block (64 transfers × 256-byte payload).
    prft::ProposeBody b;
    b.block = make_block(ring, 64, 256);
    b.pro_sig = consensus::sign_phase(ProtoId::kPrft, PhaseTag::kPropose,
                                      kRound, b.block.hash(), 0,
                                      ring.keys[0].sk);
    Writer w;
    b.encode(w);
    shapes.push_back({"propose", prft::MsgType::kPropose, w.take()});
  }
  {  // Sync: an 8-block catch-up batch plus the Final certificate.
    prft::SyncBody b;
    b.final_round = kRound;
    for (int i = 0; i < 8; ++i) b.blocks.push_back(make_block(ring, 64, 256));
    b.final_cert = make_cert(ring, PhaseTag::kFinal, b.blocks.back().hash());
    Writer w;
    b.encode(w);
    shapes.push_back({"sync", prft::MsgType::kSync, w.take()});
  }
  return shapes;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Keeps the optimizer honest: every timed loop folds a few decoded bytes
// into this sink, printed (meaninglessly) at the end.
volatile std::uint64_t g_sink = 0;

struct Timing {
  double encode_ns = 0;
  double owning_decode_ns = 0;
  double owning_recv_ns = 0;  // decode + signature verify
  double view_decode_ns = 0;
  double view_recv_ns = 0;
};

Timing time_shape(const Keyring& ring, const Envelope& env, const Bytes& wire,
                  std::uint64_t iters) {
  Timing t;
  const ByteSpan span(wire.data(), wire.size());
  std::uint64_t sink = 0;

  // Warm-up: touch every path once so lazy state (digest caches, the
  // signing-scratch pool) is populated before the clocks start.
  (void)env.encode();
  (void)consensus::verify_envelope(Envelope::decode(span), ring.registry);
  (void)consensus::verify_wire(WireView::parse(span), ring.registry);

  std::uint64_t t0 = now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const Bytes out = env.encode();
    sink += out.size();
  }
  t.encode_ns = static_cast<double>(now_ns() - t0) / static_cast<double>(iters);

  t0 = now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const Envelope e = Envelope::decode(span);
    sink += e.round + e.body().size();
  }
  t.owning_decode_ns =
      static_cast<double>(now_ns() - t0) / static_cast<double>(iters);

  t0 = now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const Envelope e = Envelope::decode(span);
    sink += consensus::verify_envelope(e, ring.registry) ? e.round : 0;
  }
  t.owning_recv_ns =
      static_cast<double>(now_ns() - t0) / static_cast<double>(iters);

  t0 = now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const WireView v = WireView::parse(span);
    sink += v.round + v.body().size();
  }
  t.view_decode_ns =
      static_cast<double>(now_ns() - t0) / static_cast<double>(iters);

  t0 = now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const WireView v = WireView::parse(span);
    sink += consensus::verify_wire(v, ring.registry) ? v.round : 0;
  }
  t.view_recv_ns =
      static_cast<double>(now_ns() - t0) / static_cast<double>(iters);

  g_sink = g_sink + sink;
  return t;
}

double mb_per_sec(std::size_t bytes, double ns_per_msg) {
  if (ns_per_msg <= 0) return 0;
  return static_cast<double>(bytes) * 1e9 / (ns_per_msg * 1024.0 * 1024.0);
}

// Field-for-field equivalence of the two decode paths on this wire; the
// shootout refuses to time codecs that disagree.
bool paths_agree(const Keyring& ring, const Bytes& wire) {
  const ByteSpan span(wire.data(), wire.size());
  const Envelope own = Envelope::decode(span);
  const WireView view = WireView::parse(span);
  if (own.proto != view.proto || own.type != view.type ||
      own.round != view.round || own.from != view.from) {
    return false;
  }
  if (own.body().size() != view.body().size()) return false;
  if (!own.body().empty() &&
      std::memcmp(own.body().data(), view.body().data(), own.body().size()) !=
          0) {
    return false;
  }
  if (own.sig != view.signature()) return false;
  if (!consensus::verify_envelope(own, ring.registry)) return false;
  if (!consensus::verify_wire(view, ring.registry)) return false;
  const Envelope round_trip = view.to_envelope();
  return round_trip.encode() == wire;
}

}  // namespace

int main(int argc, char** argv) {
  ratcon::harness::Flags flags(argc, argv);
  const bool smoke = flags.has("smoke");
  const auto iters = static_cast<std::uint64_t>(
      flags.get_int("iters", smoke ? 2000 : 50000));
  const std::string json_path =
      flags.get_str("json", "BENCH_serialization.json");

  Keyring ring;
  std::vector<Shape> shapes = make_shapes(ring);

  std::printf("%-8s %9s | %10s %12s %12s | %10s %12s %12s | %7s\n", "shape",
              "bytes", "own ns", "own+vfy ns", "own MB/s", "view ns",
              "view+vfy ns", "view MB/s", "speedup");

  ratcon::harness::JsonWriter json;
  json.begin_object();
  json.key("bench").value("serialization");
  json.key("smoke").value(smoke);
  json.key("iters").value(iters);
  json.key("committee_n").value(static_cast<std::uint64_t>(kN));
  json.key("quorum").value(static_cast<std::uint64_t>(kQuorum));
  json.key("shapes").begin_array();

  bool all_agree = true;
  for (const Shape& shape : shapes) {
    const Envelope env = consensus::make_envelope(
        ProtoId::kPrft, static_cast<std::uint8_t>(shape.type), kRound, 1,
        shape.body, ring.keys[1].sk);
    const Bytes wire = env.encode();

    const bool agree = paths_agree(ring, wire);
    all_agree = all_agree && agree;
    if (!agree) {
      std::fprintf(stderr, "FAIL: decode paths disagree on shape %s\n",
                   shape.name.c_str());
      continue;
    }

    const Timing t = time_shape(ring, env, wire, iters);
    const double speedup =
        t.view_decode_ns > 0 ? t.owning_decode_ns / t.view_decode_ns : 0;

    std::printf(
        "%-8s %9zu | %10.1f %12.1f %12.1f | %10.1f %12.1f %12.1f | %6.2fx\n",
        shape.name.c_str(), wire.size(), t.owning_decode_ns, t.owning_recv_ns,
        mb_per_sec(wire.size(), t.owning_decode_ns), t.view_decode_ns,
        t.view_recv_ns, mb_per_sec(wire.size(), t.view_decode_ns), speedup);

    json.begin_object();
    json.key("shape").value(shape.name);
    json.key("bytes").value(static_cast<std::uint64_t>(wire.size()));
    json.key("body_bytes").value(static_cast<std::uint64_t>(shape.body.size()));
    json.key("encode_ns").value(t.encode_ns);
    json.key("formats").begin_array();
    json.begin_object();
    json.key("format").value("copying");
    json.key("decode_ns").value(t.owning_decode_ns);
    json.key("decode_verify_ns").value(t.owning_recv_ns);
    json.key("decode_mb_s").value(mb_per_sec(wire.size(), t.owning_decode_ns));
    json.end_object();
    json.begin_object();
    json.key("format").value("zero_copy");
    json.key("decode_ns").value(t.view_decode_ns);
    json.key("decode_verify_ns").value(t.view_recv_ns);
    json.key("decode_mb_s").value(mb_per_sec(wire.size(), t.view_decode_ns));
    json.end_object();
    json.end_array();
    json.key("decode_speedup").value(speedup);
    json.end_object();
  }

  json.end_array();
  json.key("paths_agree").value(all_agree);
  json.end_object();

  if (!ratcon::harness::write_text_file(json_path, json.str())) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
  std::printf("sink=%llu json=%s\n",
              static_cast<unsigned long long>(g_sink), json_path.c_str());
  return all_agree ? 0 : 1;
}
