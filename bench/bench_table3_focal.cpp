// Reproduces Table 3 and the focal-point discussion of §4.3 twice over:
//
//  (1) the paper's example 3-player game with two pure Nash equilibria —
//      (B, b, β) and (A, a, α) — where (A, a, α) Pareto-dominates and is
//      therefore the focal equilibrium (the paper's hand-specified table,
//      kept as the cross-check for the NE/Pareto machinery);
//  (2) the same two-equilibria/focal-point structure *measured* by the
//      DeviationExplorer: two θ=0 players choosing honest-vs-abstain under
//      the strong-quorum baseline form an empirical coordination game —
//      all-honest and all-abstain are both equilibria and all-honest is
//      the Pareto-dominant focal point. No hand-fed payoffs: the cells
//      come from PayoffAccountant utilities over actual Simulation runs.
//
// The same machinery (pure-NE enumeration + Pareto frontier) is what the
// Theorem 3 bench uses to show TRAP's insecure equilibrium is focal.

#include <cstdio>

#include "game/normal_form.hpp"
#include "harness/table.hpp"
#include "rational/explorer.hpp"

using namespace ratcon;
using game::NormalFormGame;
using game::Profile;

int main() {
  std::printf("==========================================================\n");
  std::printf("Table 3 — example game with two equilibria (paper Sec 4.3)\n");
  std::printf("==========================================================\n\n");

  NormalFormGame g({2, 2, 2});
  g.set_player_name(0, "P1");
  g.set_player_name(1, "P2");
  g.set_player_name(2, "P3");
  g.set_strategy_name(0, 0, "A");
  g.set_strategy_name(0, 1, "B");
  g.set_strategy_name(1, 0, "a");
  g.set_strategy_name(1, 1, "b");
  g.set_strategy_name(2, 0, "alpha");
  g.set_strategy_name(2, 1, "beta");

  g.set_payoffs({0, 0, 0}, {1, 1, 1});
  g.set_payoffs({0, 0, 1}, {1, 1, 0});
  g.set_payoffs({0, 1, 0}, {1, 0, 1});
  g.set_payoffs({0, 1, 1}, {-2, 2, 2});
  g.set_payoffs({1, 0, 0}, {0, 1, 1});
  g.set_payoffs({1, 0, 1}, {1, -2, 1});
  g.set_payoffs({1, 1, 0}, {2, 2, -2});
  g.set_payoffs({1, 1, 1}, {0, 0, 0});

  harness::Table payoff_table({"Profile", "U(P1)", "U(P2)", "U(P3)"});
  for (const Profile& p : g.all_profiles()) {
    payoff_table.add_row({g.describe(p), harness::fmt(g.payoff(p, 0), 0),
                          harness::fmt(g.payoff(p, 1), 0),
                          harness::fmt(g.payoff(p, 2), 0)});
  }
  payoff_table.print();

  const auto equilibria = g.pure_nash();
  std::printf("\nPure Nash equilibria found: %zu   (paper claims: 2)\n",
              equilibria.size());
  for (const Profile& eq : equilibria) {
    std::printf("  %s  payoffs (%g, %g, %g)\n", g.describe(eq).c_str(),
                g.payoff(eq, 0), g.payoff(eq, 1), g.payoff(eq, 2));
  }

  const auto focal = g.pareto_frontier(equilibria);
  std::printf("\nPareto-undominated (focal) equilibria: %zu\n", focal.size());
  for (const Profile& eq : focal) {
    std::printf("  %s  <- \"attractive as it offers higher utility to all"
                " the players\" (Sec 4.3)\n",
                g.describe(eq).c_str());
  }

  bool ok = equilibria.size() == 2 && focal.size() == 1 &&
            g.describe(focal[0]) == "(A, a, alpha)";

  // ---- (2) Empirical focal-point game, from simulation ---------------------
  std::printf("\nEmpirical coordination game (DeviationExplorer, theta = 0 "
              "players P2/P5\nchoosing pi_0 vs pi_abs under the unanimous "
              "strong-quorum baseline, n = 8):\n\n");
  rational::ExplorerSpec spec;
  spec.protocols = {harness::Protocol::kUnanimous};
  spec.committee_sizes = {8};
  spec.nets = {harness::NetKind::kSynchronous};
  spec.seeds = {1, 2};
  spec.players = {2, 5};
  spec.strategy_space = {game::Strategy::kHonest, game::Strategy::kAbstain};
  spec.theta = 0;
  spec.epsilon = 0.05;
  spec.target_blocks = 3;
  spec.workload_txs = 6;
  const rational::ExplorerReport report = explore(spec);
  const NormalFormGame& eg = report.cells.front().game;

  harness::Table etable({"Profile", "U(P2)", "U(P5)"});
  for (const Profile& p : eg.all_profiles()) {
    etable.add_row({eg.describe(p), harness::fmt(eg.payoff(p, 0), 2),
                    harness::fmt(eg.payoff(p, 1), 2)});
  }
  etable.print();

  const auto empirical_eqs = eg.pure_nash(spec.epsilon);
  const auto empirical_focal = eg.pareto_frontier(empirical_eqs,
                                                  spec.epsilon);
  std::printf("\nEmpirical pure NEs: %zu (coordination: all-honest and "
              "all-abstain)\n",
              empirical_eqs.size());
  for (const Profile& eq : empirical_eqs) {
    std::printf("  %s\n", eg.describe(eq).c_str());
  }
  std::printf("Focal (Pareto-undominated) equilibria: %zu\n",
              empirical_focal.size());
  for (const Profile& eq : empirical_focal) {
    std::printf("  %s  <- honest coordination is focal for theta=0\n",
                eg.describe(eq).c_str());
  }
  bool has_all_honest = false;
  bool has_all_abstain = false;
  for (const Profile& eq : empirical_eqs) {
    has_all_honest = has_all_honest || eq == Profile{0, 0};
    has_all_abstain = has_all_abstain || eq == Profile{1, 1};
  }
  ok = ok && has_all_honest && has_all_abstain &&
       empirical_focal.size() == 1 && empirical_focal[0] == Profile{0, 0};

  std::printf("\n[table3] %s: two NEs with a Pareto-dominant focal point — "
              "in the paper's example\n         game and in the "
              "simulation-measured coordination game alike.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
