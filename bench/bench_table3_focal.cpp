// Reproduces Table 3 and the focal-point discussion of §4.3: the example
// 3-player game with two pure Nash equilibria — (B, b, β) and (A, a, α) —
// where (A, a, α) Pareto-dominates and is therefore the focal equilibrium.
//
// The same machinery (pure-NE enumeration + Pareto frontier) is what the
// Theorem 3 bench uses to show TRAP's insecure equilibrium is focal.

#include <cstdio>

#include "game/normal_form.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using game::NormalFormGame;
using game::Profile;

int main() {
  std::printf("==========================================================\n");
  std::printf("Table 3 — example game with two equilibria (paper Sec 4.3)\n");
  std::printf("==========================================================\n\n");

  NormalFormGame g({2, 2, 2});
  g.set_player_name(0, "P1");
  g.set_player_name(1, "P2");
  g.set_player_name(2, "P3");
  g.set_strategy_name(0, 0, "A");
  g.set_strategy_name(0, 1, "B");
  g.set_strategy_name(1, 0, "a");
  g.set_strategy_name(1, 1, "b");
  g.set_strategy_name(2, 0, "alpha");
  g.set_strategy_name(2, 1, "beta");

  g.set_payoffs({0, 0, 0}, {1, 1, 1});
  g.set_payoffs({0, 0, 1}, {1, 1, 0});
  g.set_payoffs({0, 1, 0}, {1, 0, 1});
  g.set_payoffs({0, 1, 1}, {-2, 2, 2});
  g.set_payoffs({1, 0, 0}, {0, 1, 1});
  g.set_payoffs({1, 0, 1}, {1, -2, 1});
  g.set_payoffs({1, 1, 0}, {2, 2, -2});
  g.set_payoffs({1, 1, 1}, {0, 0, 0});

  harness::Table payoff_table({"Profile", "U(P1)", "U(P2)", "U(P3)"});
  for (const Profile& p : g.all_profiles()) {
    payoff_table.add_row({g.describe(p), harness::fmt(g.payoff(p, 0), 0),
                          harness::fmt(g.payoff(p, 1), 0),
                          harness::fmt(g.payoff(p, 2), 0)});
  }
  payoff_table.print();

  const auto equilibria = g.pure_nash();
  std::printf("\nPure Nash equilibria found: %zu   (paper claims: 2)\n",
              equilibria.size());
  for (const Profile& eq : equilibria) {
    std::printf("  %s  payoffs (%g, %g, %g)\n", g.describe(eq).c_str(),
                g.payoff(eq, 0), g.payoff(eq, 1), g.payoff(eq, 2));
  }

  const auto focal = g.pareto_frontier(equilibria);
  std::printf("\nPareto-undominated (focal) equilibria: %zu\n", focal.size());
  for (const Profile& eq : focal) {
    std::printf("  %s  <- \"attractive as it offers higher utility to all"
                " the players\" (Sec 4.3)\n",
                g.describe(eq).c_str());
  }

  const bool ok = equilibria.size() == 2 && focal.size() == 1 &&
                  g.describe(focal[0]) == "(A, a, alpha)";
  std::printf("\n[table3] %s: two NEs, focal point (A, a, alpha) "
              "Pareto-dominates (B, b, beta).\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
