// Reproduces Claim 2 (§5.2, Appendix E): pRFT's view-change sub-protocol
// satisfies
//   Consistency — if an honest player commits to a view change for round
//     r, no two honest players finalize conflicting blocks around it (the
//     quorum-intersection argument k + t + 2·t0 < n); and
//   Robustness — the Byzantine set T alone cannot force a view change
//     when the leader is honest.
//
// Consistency probe: aggressive pre-GST asynchrony + partitions force many
// spurious view changes; agreement and c-strict ordering must survive all
// of them. Robustness probe: t0 Byzantine players spam signed ViewChange
// messages every few Δ; honest-led rounds must keep finalizing.

#include <cstdio>
#include <memory>

#include "core/messages.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

/// Byzantine node that only spams signed ViewChange messages for whatever
/// round the protocol is in — the T-only view-change attack of Claim 2.
class VcSpammer final : public prft::PrftNode {
 public:
  explicit VcSpammer(Deps deps) : PrftNode([&deps] {
    struct Silent final : prft::Behavior {
      [[nodiscard]] bool is_honest() const override { return false; }
      bool participate(Round, NodeId, consensus::PhaseTag) override {
        return false;  // no normal protocol messages at all
      }
      [[nodiscard]] bool expose_fraud() const override { return false; }
    };
    deps.behavior = std::make_shared<Silent>();
    return std::move(deps);
  }()) {}

  void on_start(net::Context& ctx) override {
    PrftNode::on_start(ctx);
    ctx.set_timer(kSpamTimer, config().delta);
  }

  void on_timer(net::Context& ctx, std::uint64_t timer_id) override {
    if (timer_id != kSpamTimer) {
      PrftNode::on_timer(ctx, timer_id);
      return;
    }
    // Spam a fully valid signed view-change for the current round.
    const Round r = current_round();
    prft::ViewChangeBody body;
    body.stalled_phase = consensus::PhaseTag::kPropose;
    body.vc_sig = phase_sig(consensus::PhaseTag::kViewChange, r,
                            prft::vc_value(r));
    Writer w;
    body.encode(w);
    ctx.broadcast(encode_env(prft::MsgType::kViewChange, r, w.take()));
    ctx.set_timer(kSpamTimer, 2 * config().delta);
  }

 private:
  static constexpr std::uint64_t kSpamTimer = 77;
};

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Claim 2 — view-change consistency and robustness\n");
  std::printf("==========================================================\n\n");

  bool ok = true;
  harness::Table table({"probe", "view changes", "blocks final", "agreement",
                        "ordering", "verdict"});

  // ---- Consistency under pre-GST churn -----------------------------------
  {
    harness::ScenarioSpec spec;
    spec.committee.n = 9;
    spec.seed = 700;
    spec.budget.target_blocks = 5;
    spec.workload.txs = 10;
    spec.workload.interval = msec(1);
    spec.net = harness::NetworkSpec::partial_synchrony(msec(600), msec(10),
                                                       0.85);
    spec.faults.partition({{0, 1, 2, 3}, {4, 5, 6, 7, 8}}, msec(30),
                          msec(600));
    harness::Simulation sim(spec);
    sim.start();
    sim.run_until(sec(600));

    std::uint64_t vcs = 0;
    for (NodeId id = 0; id < 9; ++id) {
      vcs += sim.prft(id).view_changes();
    }
    const bool pass = vcs > 0 && sim.agreement_holds() &&
                      sim.ordering_holds() && sim.min_height() >= 5;
    ok = ok && pass;
    table.add_row({"consistency (pre-GST churn)", std::to_string(vcs),
                   std::to_string(sim.min_height()),
                   sim.agreement_holds() ? "holds" : "VIOLATED",
                   sim.ordering_holds() ? "holds" : "VIOLATED",
                   pass ? "pass" : "FAIL"});
  }

  // ---- Robustness against T-only view-change spam -------------------------
  {
    harness::ScenarioSpec spec;
    spec.committee.n = 9;
    spec.seed = 701;
    spec.budget.target_blocks = 5;
    spec.workload.txs = 10;
    spec.workload.interval = msec(1);
    spec.adversary.node_factory =
        [](NodeId id, const harness::NodeEnv& env)
        -> std::unique_ptr<consensus::IReplica> {
      if (id < 2) {  // t = t0 = 2 Byzantine spammers
        return std::make_unique<VcSpammer>(harness::make_prft_deps(id, env));
      }
      return nullptr;
    };
    harness::Simulation sim(spec);
    sim.start();
    sim.run_until(sec(300));

    // The spam contributes only t0 < n − t0 signatures per round, so no
    // view-change certificate can form from T alone; honest-led rounds
    // finalize normally.
    const bool pass = sim.agreement_holds() && sim.min_height() >= 5 &&
                      !sim.honest_player_slashed();
    ok = ok && pass;
    std::uint64_t vcs = 0;
    for (NodeId id = 2; id < 9; ++id) {
      vcs += sim.prft(id).view_changes();
    }
    table.add_row({"robustness (T spams VC)", std::to_string(vcs),
                   std::to_string(sim.min_height()),
                   sim.agreement_holds() ? "holds" : "VIOLATED",
                   sim.ordering_holds() ? "holds" : "VIOLATED",
                   pass ? "pass" : "FAIL"});
  }

  table.print();
  std::printf("\n[claim2] %s: spurious or adversarial view changes never "
              "break agreement, and t0\n         Byzantine players cannot "
              "view-change an honest leader away (needs n - t0 sigs).\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
