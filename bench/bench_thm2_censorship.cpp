// Reproduces Theorem 2 (§4.4, Appendix C): under θ=2 no protocol is
// strongly (t,k)-robust for ⌈n/3⌉ <= k+t <= ⌈n/2⌉−1.
//
// The coalition plays π_pc: abstain from block phases whenever the leader
// is honest (forcing a view change), participate-and-censor whenever a
// coalition member leads. The bench verifies, against pRFT:
//   (1) (t,k)-eventual liveness still holds — blocks keep finalizing;
//   (2) the watched transaction tx_h never enters any honest ledger;
//   (3) no penalty is ever applicable (π_pc never double-signs);
//   (4) U(π_pc, θ=2) = α/(1−δ) > 0 = U(π_0): the attack is rational.

#include <cstdio>
#include <memory>

#include "adversary/behaviors.hpp"
#include "game/utility.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

struct Result {
  game::SystemState state;
  std::uint64_t blocks;
  std::size_t slashed;
  bool tx_included;
};

constexpr std::uint64_t kWatchedTx = 4242;

Result run(std::uint32_t coalition_size, std::uint64_t seed) {
  std::set<NodeId> coalition;
  for (NodeId id = 0; id < coalition_size; ++id) coalition.insert(id);

  harness::ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = seed;
  spec.budget.target_blocks = 5;
  spec.workload.txs = 8;
  spec.workload.interval = msec(1);
  for (NodeId id : coalition) {
    spec.adversary.behaviors[id] =
        std::make_shared<adversary::PartialCensorBehavior>(
            coalition, std::set<std::uint64_t>{kWatchedTx});
  }
  harness::Simulation sim(spec);
  sim.submit_tx(ledger::make_transfer(kWatchedTx, 5), msec(1));
  sim.start();
  sim.run_until(sec(600));

  bool included = false;
  for (const ledger::Chain* c : sim.honest_chains()) {
    included = included || c->finalized_contains_tx(kWatchedTx);
  }
  return {sim.classify(0, kWatchedTx), sim.max_height(),
          sim.deposits().slashed_players().size(), included};
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Theorem 2 — theta=2 rational players censor forever\n");
  std::printf("==========================================================\n\n");
  std::printf("pRFT, n = 9, t0 = 2. Coalition plays pi_pc: abstain under "
              "honest leaders,\ncensor tx_h when leading. Watched tx id = "
              "%llu, submitted to all honest players.\n\n",
              static_cast<unsigned long long>(kWatchedTx));

  const game::UtilityParams params{1.0, 10.0, 0.9};
  harness::Table table({"k+t", "system state", "blocks", "tx_h included",
                        "slashed", "U(pi_pc, theta=2)", "U(pi_0)",
                        "censor preferred?"});
  bool ok = true;
  for (std::uint32_t size : {0u, 4u}) {
    const Result r = run(size, 400 + size);
    const double u_pc = game::stationary_discounted(
        game::payoff_f(r.state, 2, params.alpha), params.delta);
    if (size == 0) {
      ok = ok && r.state == game::SystemState::kHonest && r.tx_included;
    } else {
      ok = ok && r.state == game::SystemState::kCensorship &&
           !r.tx_included && r.slashed == 0 && r.blocks >= 3 && u_pc > 0;
    }
    table.add_row({std::to_string(size), game::to_string(r.state),
                   std::to_string(r.blocks), r.tx_included ? "yes" : "NO",
                   std::to_string(r.slashed), harness::fmt(u_pc, 2),
                   harness::fmt(0.0, 2), u_pc > 0 ? "yes -> attack" : "no"});
  }
  table.print();

  std::printf("\nKey mechanism: pi_pc never double-signs and never crashes "
              "forever, so it is\nindistinguishable from pi_0 to any "
              "accountability mechanism — yet (t,k)-censorship\nresistance "
              "fails while (t,k)-eventual liveness holds (blocks keep "
              "landing in\ncoalition-led rounds). This holds despite "
              "threshold-encryption mempools: the\nleader simply omits the "
              "transaction.\n");
  std::printf("\n[thm2] %s: strongly (t,k)-robust RC is impossible for "
              "theta=2 in this range.\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
