// Reproduces Claim 1 (§4.2): any protocol reaching agreement at threshold
// τ is only (t,k)-robust if τ ∈ [⌊(n+t0)/2⌋ + 1, n − t0].
//
//  * τ > n − t0: a quorum needs adversary signatures, so t0 abstaining
//    Byzantine players kill (t,k)-eventual liveness.
//  * τ ≤ ⌊(n+t0)/2⌋: a partition into equal halves plus t0 double-signers
//    reaches conflicting quorums — (t,k)-agreement breaks.
//
// The bench sweeps τ across the interval on the generic two-phase quorum
// protocol (n = 10, t0 = 2) and measures which property fails.

#include <cstdio>
#include <memory>

#include "baselines/quorum_node.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using baselines::QuorumForkPlan;
using baselines::QuorumNode;
using harness::ScenarioSpec;
using harness::Simulation;

namespace {

constexpr std::uint32_t kN = 10;
constexpr std::uint32_t kT0 = 2;

struct Outcome {
  bool live = false;
  bool fork = false;
};

/// Liveness probe: t0 Byzantine players abstain; do blocks still finalize?
Outcome run_liveness(std::uint32_t tau) {
  ScenarioSpec spec;
  spec.protocol = harness::Protocol::kQuorum;
  spec.committee.n = kN;
  spec.committee.t0 = kT0;
  spec.seed = 50 + tau;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  spec.adversary.node_factory =
      [tau](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    QuorumNode::Deps deps = harness::make_quorum_deps(id, env);
    deps.tau = tau;
    deps.abstain = id < kT0;  // π_abs, crash-indistinguishable
    return std::make_unique<QuorumNode>(std::move(deps));
  };
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));
  return {sim.max_height() >= 3, !sim.agreement_holds()};
}

/// Safety probe: t0 double-signers + an equal partition of the rest.
Outcome run_safety(std::uint32_t tau) {
  auto plan = std::make_shared<QuorumForkPlan>();
  plan->n = kN;
  plan->coalition = {0, 1};  // exactly t0 Byzantine double-signers
  plan->side_a = {2, 3, 4, 5};
  plan->side_b = {6, 7, 8, 9};

  ScenarioSpec spec;
  spec.protocol = harness::Protocol::kQuorum;
  spec.committee.n = kN;
  spec.committee.t0 = kT0;
  spec.seed = 90 + tau;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  spec.adversary.node_factory =
      [tau, plan](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    QuorumNode::Deps deps = harness::make_quorum_deps(id, env);
    deps.tau = tau;
    deps.fork_plan = plan;
    return std::make_unique<QuorumNode>(std::move(deps));
  };
  // The partition argument of Claim 1: A and B only talk through T.
  spec.faults.partition({{2, 3, 4, 5}, {6, 7, 8, 9}}, 0, sec(60));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));
  return {sim.max_height() >= 1, !sim.agreement_holds()};
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Claim 1 — admissible agreement thresholds tau\n");
  std::printf("==========================================================\n\n");
  std::printf("n = %u, t0 = %u. Paper: tau must lie in "
              "[floor((n+t0)/2)+1, n-t0] = [%u, %u]\n\n",
              kN, kT0, (kN + kT0) / 2 + 1, kN - kT0);

  harness::Table table({"tau", "in Claim-1 interval?",
                        "liveness vs t0 abstainers",
                        "agreement vs t0 double-signers + partition",
                        "verdict"});
  bool all_match = true;
  for (std::uint32_t tau = 5; tau <= 9; ++tau) {
    const bool in_interval = tau >= (kN + kT0) / 2 + 1 && tau <= kN - kT0;
    const Outcome live = run_liveness(tau);
    const Outcome safe = run_safety(tau);
    const bool ok = live.live && !safe.fork;
    // Claim 1 is necessary-only: inside the interval both probes must pass;
    // outside it at least one must fail.
    const bool matches = in_interval ? ok : !ok;
    all_match = all_match && matches;
    table.add_row({std::to_string(tau), in_interval ? "yes" : "no",
                   live.live ? "live" : "STALLED",
                   safe.fork ? "FORKED" : "safe",
                   matches ? "matches Claim 1" : "MISMATCH"});
  }
  table.print();

  std::printf("\n[claim1] %s: tau > n-t0 stalls under abstention; "
              "tau <= floor((n+t0)/2) forks under partition;\n"
              "         the interval's thresholds pass both probes.\n",
              all_match ? "OK" : "MISMATCH");
  return all_match ? 0 : 1;
}
