// Reproduces Table 1 (§1): bounds for consensus across network models and
// threat models, measured by running each protocol family at both sides of
// its claimed boundary on the shared simulator (n = 12):
//
//   CFT(c):    Raft-lite        — live with 2c < n, stalled at c >= n/2
//   BFT(t):    pBFT-style quorum — live with 3t < n, stalled beyond;
//                                  forks once equivocators reach n − 2·t0
//   RFT(t,k):  pRFT             — safe and live for t < n/4, t + k < n/2
//                                  even under the fork coalition that
//                                  breaks the pBFT-style protocol
//
// The synchronous and partially synchronous rows are both exercised for
// pRFT (the paper's contribution row); the asynchronous row is analytic
// (FLP: no deterministic protocol — noted, not simulated).

#include <cstdio>
#include <memory>

#include "adversary/fork_agent.hpp"
#include "baselines/quorum_node.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;
using baselines::QuorumForkPlan;
using baselines::QuorumNode;
using harness::Protocol;
using harness::ScenarioSpec;
using harness::Simulation;

namespace {

constexpr std::uint32_t kN = 12;

struct Probe {
  bool live = false;
  bool safe = true;
};

Probe run_raft(std::uint32_t crashes, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kRaftLite;
  spec.committee.n = kN;
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  // Table 1 measures the protocols' intrinsic bounds; the catch-up
  // substrate (which can help honest minorities converge past targeted
  // attacks) stays out of these probes.
  spec.sync_plan.enabled = false;
  spec.faults.crash_range(0, crashes, msec(5));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(240));
  std::uint64_t alive_max = 0;
  for (NodeId id = crashes; id < kN; ++id) {
    alive_max =
        std::max(alive_max, sim.replica(id).chain().finalized_height());
  }
  return {alive_max >= 3, sim.agreement_holds()};
}

Probe run_quorum(std::uint32_t abstainers, std::uint32_t equivocators,
                 std::uint64_t seed) {
  std::shared_ptr<QuorumForkPlan> plan;
  if (equivocators > 0) {
    plan = std::make_shared<QuorumForkPlan>();
    plan->n = kN;
    for (NodeId id = 0; id < equivocators; ++id) plan->coalition.insert(id);
    const std::uint32_t honest = kN - equivocators;
    for (NodeId id = equivocators; id < equivocators + honest / 2; ++id) {
      plan->side_a.insert(id);
    }
    for (NodeId id = equivocators + honest / 2; id < kN; ++id) {
      plan->side_b.insert(id);
    }
  }
  ScenarioSpec spec;
  spec.protocol = Protocol::kQuorum;
  spec.committee.n = kN;
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  spec.sync_plan.enabled = false;  // protocol-intrinsic bound (see run_raft)
  spec.adversary.node_factory =
      [plan, abstainers](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    QuorumNode::Deps deps = harness::make_quorum_deps(id, env);
    deps.fork_plan = plan;
    deps.abstain = id < abstainers;
    return std::make_unique<QuorumNode>(std::move(deps));
  };
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(240));
  return {sim.max_height() >= 3, sim.agreement_holds()};
}

Probe run_prft(std::uint32_t coalition, bool partial_sync,
               std::uint64_t seed) {
  std::shared_ptr<adversary::ForkPlan> plan;
  if (coalition > 0) {
    plan = std::make_shared<adversary::ForkPlan>();
    plan->n = kN;
    for (NodeId id = 0; id < coalition; ++id) plan->coalition.insert(id);
    const std::uint32_t honest = kN - coalition;
    for (NodeId id = coalition; id < coalition + (honest + 1) / 2; ++id) {
      plan->side_a.insert(id);
    }
    for (NodeId id = coalition + (honest + 1) / 2; id < kN; ++id) {
      plan->side_b.insert(id);
    }
  }
  ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.workload.interval = msec(1);
  spec.sync_plan.enabled = false;  // protocol-intrinsic bound (see run_raft)
  if (partial_sync) {
    spec.net =
        harness::NetworkSpec::partial_synchrony(msec(400), msec(10), 0.85);
  }
  if (plan != nullptr) {
    spec.adversary.node_factory =
        [plan](NodeId id, const harness::NodeEnv& env)
        -> std::unique_ptr<consensus::IReplica> {
      if (plan->coalition.count(id)) {
        return std::make_unique<adversary::ForkAgentNode>(
            harness::make_prft_deps(id, env), plan);
      }
      return nullptr;
    };
  }
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(420));
  return {sim.min_height() >= 3,
          sim.agreement_holds() && !sim.honest_player_slashed()};
}

const char* verdict(const Probe& p) {
  if (!p.safe) return "FORKS";
  return p.live ? "safe + live" : "stalls";
}

}  // namespace

int main() {
  std::printf("==========================================================\n");
  std::printf("Table 1 — consensus bounds per threat model (n = %u)\n", kN);
  std::printf("==========================================================\n\n");

  harness::Table table({"Network", "Threat model", "Faults", "Paper bound",
                        "Measured", "Matches"});
  bool ok = true;
  auto row = [&](const char* net, const char* model, const char* faults,
                 const char* bound, const Probe& p, bool expect_ok) {
    const bool good = (p.safe && p.live) == expect_ok;
    ok = ok && good;
    table.add_row({net, model, faults, bound, verdict(p),
                   good ? "yes" : "NO"});
  };

  // --- CFT rows (2c < n): boundary at c = 5 vs c = 6 of 12. --------------
  row("sync", "CFT(c) raft-lite", "c=5 crashes", "2c < n", run_raft(5, 1),
      true);
  row("sync", "CFT(c) raft-lite", "c=6 crashes", "2c < n (violated)",
      run_raft(6, 2), false);

  // --- BFT rows (3t < n): t0 = 3 at n = 12. -------------------------------
  row("part-sync", "BFT(t) pBFT-style", "t=3 abstain", "3t < n",
      run_quorum(3, 0, 3), true);
  row("part-sync", "BFT(t) pBFT-style", "t=4 abstain", "3t < n (violated)",
      run_quorum(4, 0, 4), false);
  row("part-sync", "BFT(t) pBFT-style", "k+t=6 equivocate",
      "safety gone at n-2*t0", run_quorum(0, 6, 5), false);

  // --- RFT rows (t < n/4, t + k < n/2): pRFT, the paper's contribution. ---
  // The paper's k + t < n/2 is sufficient, not tight: this implementation's
  // measured safety margin runs to the quorum-intersection point
  // n − 2·t0 − 1 = 7 at n = 12; at k + t = 8 both partition sides can
  // assemble conflicting quorums and safety is gone.
  row("sync", "RFT(t,k) pRFT", "k+t=5 fork coalition",
      "t < n/4, t+k < n/2", run_prft(5, false, 6), true);
  row("part-sync", "RFT(t,k) pRFT", "k+t=5 fork coalition",
      "t < n/4, t+k < n/2", run_prft(5, true, 7), true);
  row("part-sync", "RFT(t,k) pRFT", "k+t=8 fork coalition",
      "beyond n-2*t0: unsafe", run_prft(8, true, 8), false);

  table.print();

  std::printf("\nAsynchronous row (not simulated): deterministic consensus "
              "is impossible with even\none fault (FLP); randomized "
              "protocols achieve t < n/3 (Bracha) — cited, analytic.\n");
  std::printf("\n[table1] %s: every measured boundary matches the paper's "
              "Table 1 (pRFT rows in blue).\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
