// Quickstart: stand up a 7-player pRFT committee on the simulated network,
// submit transactions, agree on blocks, and inspect the resulting ledger.
//
//   ./quickstart [--n 7] [--blocks 5] [--txs 20] [--seed 1]
//
// This is the smallest end-to-end use of the public API:
//   harness::ScenarioSpec — protocol, committee, network, workload, budget
//   harness::Simulation   — assembles nodes + trusted setup + network
//   run_until             — drives the deterministic event loop
//   chain()/classify()    — read back ledgers and the system state σ.

#include <cstdio>

#include "harness/flags.hpp"
#include "harness/matrix.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

int main(int argc, char** argv) {
  harness::Flags flags(argc, argv);
  const auto n = static_cast<std::uint32_t>(flags.get_int("n", 7));
  const auto blocks = static_cast<std::uint64_t>(flags.get_int("blocks", 5));
  const auto txs = static_cast<std::uint64_t>(flags.get_int("txs", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("pRFT quickstart: n = %u players, t0 = %u, quorum = %u, "
              "target %llu blocks\n\n",
              n, consensus::prft_t0(n), n - consensus::prft_t0(n),
              static_cast<unsigned long long>(blocks));

  // 1. Describe the scenario. Defaults: pRFT, synchronous network
  //    (Δ = 10 ms), honest behaviour everywhere, one collateral deposit
  //    per player. The workload is `txs` transfers submitted 2 ms apart
  //    to every player's mempool (clients gossip transactions to the
  //    whole committee).
  harness::ScenarioSpec spec;
  spec.with_n(n).with_seed(seed).with_target_blocks(blocks).with_workload(txs);

  // 2. Assemble the committee: trusted setup, deposits, network, replicas.
  harness::Simulation sim(spec);

  // 3. Run. The loop is deterministic: same seed => bit-identical ledgers.
  sim.start();
  sim.run_until(sec(60));

  // 4. Inspect results.
  const ledger::Chain& chain = sim.replica(0).chain();
  harness::Table table({"height", "round", "proposer", "txs", "hash"});
  for (std::uint64_t h = 1; h <= chain.finalized_height(); ++h) {
    const ledger::Block& b = chain.at(h);
    table.add_row({std::to_string(h), std::to_string(b.round),
                   "P" + std::to_string(b.proposer),
                   std::to_string(b.txs.size()),
                   crypto::hash_hex(b.hash()).substr(0, 16) + "..."});
  }
  table.print();

  std::printf("\nsystem state: %s   agreement: %s   c-strict ordering: %s\n",
              game::to_string(sim.classify(0)),
              sim.agreement_holds() ? "holds" : "VIOLATED",
              sim.ordering_holds() ? "holds" : "VIOLATED");
  std::printf("network traffic: %s messages, %s\n",
              harness::fmt_count(sim.net().stats().total().count).c_str(),
              harness::fmt_bytes(sim.net().stats().total().bytes).c_str());

  // 5. The same committee across network conditions: a mini seed-matrix
  //    sweep (see tests/matrix_test.cpp for the full tier-1 cross-product,
  //    and bench_matrix_sweep for wider CLI-driven sweeps).
  std::printf("\nmini seed matrix (same n, three network models):\n");
  harness::MatrixSpec msweep;
  msweep.committee_sizes = {n};
  msweep.seeds = {seed, seed + 1};
  msweep.target_blocks = 2;
  const harness::MatrixReport report = harness::run_matrix(msweep);
  std::printf("%s\n", report.summary().c_str());

  return sim.agreement_holds() && sim.min_height() >= blocks &&
                 report.all_safe()
             ? 0
             : 1;
}
