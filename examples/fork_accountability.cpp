// Fork accountability walkthrough: a rational/Byzantine coalition attempts
// the paper's disagreement attack (π_ds / π_fork) against pRFT and gets
// caught by the Reveal phase — every double-signer loses its collateral,
// no honest player is ever slashed, and the chain keeps growing.
//
//   ./fork_accountability [--seed 42]
//
// Scenario (n = 9, t0 = 2, quorum 7): coalition {P0..P3} equivocates two
// blocks per attacked round, showing value A to {P4,P5,P6} and value B to
// {P7,P8}. Lemma 4's quorum intersection says at most one value can reach
// tentative consensus; the conflicting commit signatures then surface in
// Reveal and are burned via Proof-of-Fraud.

#include <cstdio>

#include "adversary/fork_agent.hpp"
#include "harness/flags.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

int main(int argc, char** argv) {
  harness::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = 9;
  plan->coalition = {0, 1, 2, 3};
  plan->side_a = {4, 5, 6};
  plan->side_b = {7, 8};

  std::printf("Fork-accountability demo: coalition {P0..P3} (k+t = 4 < n/2) "
              "double-signs in every\nround it leads; honest sides "
              "{P4,P5,P6} vs {P7,P8}.\n\n");

  harness::ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = seed;
  spec.budget.target_blocks = 4;
  spec.workload.txs = 16;
  spec.adversary.node_factory =
      [plan](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    if (plan->coalition.count(id)) {
      return std::make_unique<adversary::ForkAgentNode>(
          harness::make_prft_deps(id, env), plan);
    }
    return nullptr;
  };
  harness::Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  std::printf("Attacked rounds (coalition leader equivocated):");
  for (const auto& [round, values] : plan->values) {
    std::printf(" %llu", static_cast<unsigned long long>(round));
  }
  std::printf("\n\nPer-player outcome:\n\n");

  harness::Table table({"player", "role", "deposit", "slashed", "height"});
  for (NodeId id = 0; id < 9; ++id) {
    const bool colluder = plan->coalition.count(id) > 0;
    table.add_row({"P" + std::to_string(id),
                   colluder ? "colluder (pi_fork)" : "honest (pi_0)",
                   std::to_string(sim.deposits().balance(id)),
                   sim.deposits().slashed(id) ? "YES (PoF burned)" : "no",
                   std::to_string(sim.replica(id).chain().finalized_height())});
  }
  table.print();

  bool all_colluders_slashed = true;
  for (NodeId id : plan->coalition) {
    all_colluders_slashed &= sim.deposits().slashed(id);
  }
  std::printf("\nagreement: %s   honest slashed: %s   all colluders "
              "slashed: %s   chain height: %llu\n",
              sim.agreement_holds() ? "holds (no fork!)" : "VIOLATED",
              sim.honest_player_slashed() ? "YES (bug)" : "no",
              all_colluders_slashed ? "yes" : "no",
              static_cast<unsigned long long>(sim.min_height()));
  std::printf("\nThis is Lemma 4 in action: U(pi_fork) = -L per colluder, "
              "so honesty is the\ndominant strategy for theta=1 rational "
              "players.\n");
  return sim.agreement_holds() && !sim.honest_player_slashed() ? 0 : 1;
}
