// The censorship game (Theorem 2 narrative): a θ=2 coalition runs the
// partial-censorship strategy π_pc against pRFT and wins — the watched
// transaction never lands although the chain keeps growing, and no
// penalty mechanism can ever attribute the behaviour.
//
//   ./censorship_game [--seed 17]
//
// The demo then flips the rational players' type to θ=1 (the paper's
// admissible case) and shows the same committee including the transaction
// promptly — the impossibility is about *incentives*, not protocol bugs.

#include <cstdio>

#include "adversary/behaviors.hpp"
#include "game/utility.hpp"
#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

constexpr std::uint64_t kWatched = 7777;
const std::set<NodeId> kCoalition = {0, 1, 2, 3};

struct Outcome {
  game::SystemState state;
  std::uint64_t height;
  bool included;
  std::size_t slashed;
};

Outcome run(bool censoring, std::uint64_t seed) {
  harness::ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = seed;
  spec.budget.target_blocks = 5;
  spec.workload.txs = 10;
  if (censoring) {
    for (NodeId id : kCoalition) {
      spec.adversary.behaviors[id] =
          std::make_shared<adversary::PartialCensorBehavior>(
              kCoalition, std::set<std::uint64_t>{kWatched});
    }
  }
  harness::Simulation sim(spec);
  sim.submit_tx(ledger::make_transfer(kWatched, 5), msec(1));
  sim.start();
  sim.run_until(censoring ? sec(600) : sec(60));

  bool included = false;
  for (const ledger::Chain* c : sim.honest_chains()) {
    included = included || c->finalized_contains_tx(kWatched);
  }
  return {sim.classify(0, kWatched), sim.max_height(), included,
          sim.deposits().slashed_players().size()};
}

}  // namespace

int main(int argc, char** argv) {
  harness::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));

  std::printf("Censorship game: watched tx #%llu is input to every honest "
              "player at t = 1 ms.\nCoalition {P0..P3} is theta=2: it "
              "profits from censorship.\n\n",
              static_cast<unsigned long long>(kWatched));

  const Outcome censored = run(true, seed);
  const Outcome honest = run(false, seed + 1);

  harness::Table table({"committee", "system state", "chain height",
                        "tx included", "slashed"});
  table.add_row({"theta=2 coalition plays pi_pc",
                 game::to_string(censored.state),
                 std::to_string(censored.height),
                 censored.included ? "yes" : "NO — censored",
                 std::to_string(censored.slashed)});
  table.add_row({"all honest (control)", game::to_string(honest.state),
                 std::to_string(honest.height),
                 honest.included ? "yes" : "NO",
                 std::to_string(honest.slashed)});
  table.print();

  const game::UtilityParams params{1.0, 10.0, 0.9};
  std::printf("\nWhy the attack is rational (Eq. 1, delta = 0.9):\n");
  std::printf("  U(pi_pc, theta=2) = %+.2f   (censorship state every "
              "round, no penalty)\n",
              game::stationary_discounted(
                  game::payoff_f(censored.state, 2, params.alpha),
                  params.delta));
  std::printf("  U(pi_0,  theta=2) = %+.2f\n",
              game::stationary_discounted(
                  game::payoff_f(game::SystemState::kHonest, 2, params.alpha),
                  params.delta));
  std::printf("\npi_pc abstains under honest leaders (indistinguishable "
              "from crashes) and censors\nwhen leading (a leader may "
              "select any tx subset) — no protocol can both stay\nlive "
              "and punish it: Theorem 2. pRFT therefore targets theta=1 "
              "players only.\n");

  const bool ok = censored.state == game::SystemState::kCensorship &&
                  !censored.included && censored.slashed == 0 &&
                  honest.included;
  return ok ? 0 : 1;
}
