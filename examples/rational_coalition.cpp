// Rational coalition comparison: the same θ=1 coalition (double-signers
// with k + t just under n/2… of the weaker protocol's tolerance) attacks
// a pBFT-style baseline and pRFT side by side.
//
//   ./rational_coalition [--seed 7]
//
// Against the pBFT-style quorum protocol (t0 = ⌈n/3⌉−1) the coalition
// forks the ledger — that protocol was never designed for the rational
// threat model. Against pRFT (t0 = ⌈n/4⌉−1, accountability in-protocol)
// the same coalition fails and is slashed. This is Table 1's RFT row and
// the paper's headline comparison in one program.

#include <cstdio>

#include "adversary/fork_agent.hpp"
#include "baselines/quorum_node.hpp"
#include "harness/flags.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

namespace {

constexpr std::uint32_t kN = 10;

struct Outcome {
  bool forked;
  std::size_t slashed;
  std::uint64_t height;
};

Outcome attack_pbft(std::uint64_t seed) {
  auto plan = std::make_shared<baselines::QuorumForkPlan>();
  plan->n = kN;
  plan->coalition = {0, 1, 2, 3};
  plan->side_a = {4, 5, 6};
  plan->side_b = {7, 8, 9};

  harness::ScenarioSpec spec;
  spec.protocol = harness::Protocol::kQuorum;  // t0 = ⌈n/3⌉−1, the classic
  spec.committee.n = kN;                       // n/3 design point
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 8;
  spec.adversary.node_factory = [plan](NodeId id,
                                       const harness::NodeEnv& env) {
    baselines::QuorumNode::Deps deps = harness::make_quorum_deps(id, env);
    deps.fork_plan = plan;
    return std::make_unique<baselines::QuorumNode>(std::move(deps));
  };
  harness::Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));
  return {!sim.agreement_holds(),
          sim.deposits().slashed_players().size(), sim.max_height()};
}

Outcome attack_prft(std::uint64_t seed) {
  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = kN;
  plan->coalition = {0, 1, 2, 3};
  // pRFT's quorum is 8 of 10, so the coalition needs 4 honest dupes on one
  // side for its value to progress at all — which is exactly what gets its
  // conflicting commits into the Reveal evidence.
  plan->side_a = {4, 5, 6, 7};
  plan->side_b = {8, 9};

  harness::ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 8;
  spec.adversary.node_factory =
      [plan](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    if (plan->coalition.count(id)) {
      return std::make_unique<adversary::ForkAgentNode>(
          harness::make_prft_deps(id, env), plan);
    }
    return nullptr;
  };
  harness::Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));
  return {!sim.agreement_holds(),
          sim.deposits().slashed_players().size(), sim.min_height()};
}

}  // namespace

int main(int argc, char** argv) {
  harness::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  std::printf("Rational-coalition comparison at n = %u: the same coalition "
              "{P0..P3} (k+t = 4)\nattacks a pBFT-style protocol and pRFT.\n\n",
              kN);

  const Outcome pbft = attack_pbft(seed);
  const Outcome prft = attack_prft(seed);

  harness::Table table({"protocol", "design bound", "result",
                        "players slashed", "honest chain height"});
  table.add_row({"pBFT-style quorum", "t < n/3 Byzantine",
                 pbft.forked ? "FORKED (disagreement)" : "safe",
                 std::to_string(pbft.slashed), std::to_string(pbft.height)});
  table.add_row({"pRFT", "t < n/4, k+t < n/2 rational",
                 prft.forked ? "FORKED (bug!)" : "safe + attackers caught",
                 std::to_string(prft.slashed), std::to_string(prft.height)});
  table.print();

  std::printf("\nThe coalition is worth k + t = 4 players: below n/2, above "
              "n/3. pBFT's quorum\nintersection assumes at most "
              "⌈n/3⌉-1 = %u equivocators and breaks; pRFT's reveal\nphase "
              "catches all four double-signers and burns their deposits.\n",
              consensus::bft_t0(kN));

  const bool ok = pbft.forked && !prft.forked && prft.slashed >= 4;
  std::printf("\n%s\n", ok ? "Demo outcome matches the paper." :
                             "UNEXPECTED OUTCOME — check seeds.");
  return ok ? 0 : 1;
}
