// Partial synchrony walkthrough: pRFT under an adversarial pre-GST
// partition, showing tentative consensus, view changes, state transfer
// and post-GST convergence.
//
//   ./network_partition [--seed 13] [--gst-ms 500]
//
// Before GST the network is split 5/4 (quorum is 7 of 9, so neither side
// can finalize alone); messages crossing the cut are held. Rounds time
// out, view changes fire, and the moment the partition heals every player
// catches up and liveness resumes — no fork, ever (Theorem 5's partially
// synchronous case).

#include <cstdio>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

using namespace ratcon;

int main(int argc, char** argv) {
  harness::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 13));
  const auto gst = msec(flags.get_int("gst-ms", 500));

  std::printf("Partial-synchrony demo: n = 9, quorum 7, partition "
              "{P0..P4} | {P5..P8} until GST = %lld ms.\n\n",
              static_cast<long long>(gst / 1000));

  harness::ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = seed;
  spec.budget.target_blocks = 6;
  spec.workload.txs = 18;
  spec.net = harness::NetworkSpec::partial_synchrony(gst, msec(10), 0.85);
  spec.faults.partition({{0, 1, 2, 3, 4}, {5, 6, 7, 8}}, msec(20), gst);
  harness::Simulation sim(spec);

  sim.start();

  // Sample progress at checkpoints to show the stall-then-catch-up shape.
  harness::Table table({"time", "min height", "max height", "max round",
                        "view changes (total)"});
  auto sample = [&](SimTime at) {
    sim.run_until(at);
    std::uint64_t vcs = 0, max_round = 0;
    for (NodeId id = 0; id < 9; ++id) {
      vcs += sim.prft(id).view_changes();
      max_round = std::max(max_round, sim.prft(id).current_round());
    }
    table.add_row({harness::fmt(static_cast<double>(at) / 1000000.0, 2) + " s",
                   std::to_string(sim.min_height()),
                   std::to_string(sim.max_height()),
                   std::to_string(max_round), std::to_string(vcs)});
  };
  sample(msec(250));   // mid-partition: stalled
  sample(gst);         // heal point
  sample(gst + sec(2));
  sample(sec(60));
  table.print();

  std::printf("\nfinal: agreement %s, ordering %s, min height %llu "
              "(target 6), honest slashed: %s\n",
              sim.agreement_holds() ? "holds" : "VIOLATED",
              sim.ordering_holds() ? "holds" : "VIOLATED",
              static_cast<unsigned long long>(sim.min_height()),
              sim.honest_player_slashed() ? "YES (bug)" : "no");
  std::printf("\nTentative blocks from interrupted rounds act as locks and "
              "survive view changes;\nstate-transfer replies to view-change "
              "messages resynchronize players the\nadversarial scheduler "
              "cut out (see DESIGN.md, deviations).\n");
  return sim.agreement_holds() && sim.min_height() >= 6 ? 0 : 1;
}
